"""The implementation flow as a DAG, and the engine behind
:func:`repro.core.flow.implement`.

Each stage of the legacy hand-rolled flow becomes a :class:`Stage`
node with explicit data dependencies and a narrowed cache-key domain
(``knobs``): changing ``routing_iterations`` re-executes only the
routing stage, while synthesis, placement, and signoff replay from the
content-addressed cache.  The stage functions are module-level so the
:class:`~repro.orchestrate.executor.PoolExecutor` can ship them to
worker processes.

Data-dependency notes mirrored from the legacy serial order:

* ``insert_scan`` mutates the netlist, and the legacy flow routed and
  signed off *after* scan insertion.  The netlist travels inside its
  :class:`~repro.place.placement.Placement` (``placement.netlist``),
  and ``dft`` consumes and returns that bundle — so even across
  process boundaries (where each stage gets a pickled copy) the
  placement and the post-scan netlist downstream stages see are the
  same consistent pair.
* ``cts``, ``routing``, and ``signoff`` all depend only on ``dft`` —
  they are independent DAG branches (signoff parasitics come from
  placement-derived lengths, not routing) and run concurrently under
  the pool executor.
* ``cts`` is optional: a CTS failure degrades the run (no clock tree)
  instead of killing a sweep.
"""

from __future__ import annotations

from repro.core.flow import FlowOptions, FlowResult
from repro.orchestrate.dag import FlowDAG, Stage
from repro.orchestrate.executor import PoolExecutor, SerialExecutor
from repro.orchestrate.telemetry import Span, TelemetrySink

STAGE_NAMES = ("synthesis", "placement", "dft", "cts", "routing",
               "signoff")


def stage_synthesis(ctx) -> object:
    """RTL-ish subject to mapped netlist (skipped for a netlist).

    ``options.synth_engine`` (the mapper: ``area`` | ``delay`` |
    ``trivial``) and ``options.sizing_engine`` (the STA behind the
    sizing loop: ``incremental`` | ``scalar``) resolve *leniently*
    through the :mod:`repro.engines` registry, like every other stage:
    a retired name from an old journal falls back with a warning
    instead of failing the replay, while typos in fresh options
    already raised at construction.  The canonical names then feed
    :class:`~repro.synthesis.flow.SynthesisFlow`, whose body never
    branches on them.
    """
    from repro.engines import resolve_engine
    from repro.netlist.circuit import Netlist
    from repro.synthesis.flow import SynthesisFlow
    subject = ctx["subject"]
    if isinstance(subject, Netlist):
        return subject
    options = ctx["options"]
    flow = SynthesisFlow(
        ctx["library"], options.era, options.clock_period_ps,
        engine=resolve_engine("synthesis", options.synth_engine).name,
        sizing_engine=resolve_engine(
            "sizing", options.sizing_engine).name)
    return flow.run(subject).netlist


def stage_placement(ctx) -> object:
    """Global + optional detailed placement of the mapped netlist.

    ``options.place_engine`` resolves through the :mod:`repro.engines`
    registry: ``analytic`` (the vectorized CSR-native engine) is the
    stage default, ``quadratic`` (the original object-graph placer)
    stays registered as the QoR baseline.  Every placement kernel
    shares one signature, so the stage body never branches on engine
    names — and resolution here is *lenient*: an engine string from an
    old journal that the registry no longer knows falls back to the
    stage default with a warning instead of failing the replay (typos
    in fresh options already raised at construction).
    """
    from repro.engines import resolve_engine
    options = ctx["options"]
    kernel = resolve_engine("placement", options.place_engine).load()
    return kernel(
        ctx["synthesis"], utilization=options.utilization,
        seed=options.seed, spreading_passes=options.spreading_passes,
        detailed_passes=options.detailed_passes)


def stage_dft(ctx) -> object:
    """Scan insertion (layout-aware order uses the placement).

    Operates on ``placement.netlist`` and returns the placement bundle
    — mutated in place when scan fires, untouched otherwise — so
    downstream stages consume the post-DFT design explicitly rather
    than via side effect.
    """
    from repro.dft.scan import insert_scan, reorder_chain
    placement, options = ctx["placement"], ctx["options"]
    netlist = placement.netlist
    if options.scan and netlist.sequential_gates():
        flops = [g.name for g in netlist.sequential_gates()]
        order = reorder_chain(flops, placement) \
            if options.layout_aware_scan else None
        insert_scan(netlist, num_chains=options.scan_chains,
                    order=order)
    return placement


def stage_cts(ctx) -> object:
    """Clock-tree synthesis over the placement (optional stage).

    ``options.cts_engine`` resolves leniently through the
    :mod:`repro.engines` registry: ``htree`` (recursive-bisection
    balanced tree, the default) or ``spine`` (the serpentine ablation
    strawman).  Both kernels share the ``fn(placement) -> ClockTree``
    signature, so the stage body never branches on engine names.
    """
    options, placement = ctx["options"], ctx["dft"]
    if options.cts and placement.netlist.sequential_gates():
        from repro.engines import resolve_engine
        kernel = resolve_engine("cts", options.cts_engine).load()
        return kernel(placement)
    return None


def stage_routing(ctx) -> object:
    """Global routing over the post-DFT placement (scan-chain nets
    are routed, as in the serial flow).

    ``options.routing_engine`` resolves leniently through the
    :mod:`repro.engines` registry, like placement.  ``options.seed``
    feeds the batched engine's deterministic tie-break jitter, which
    is why ``seed`` is part of this stage's cache key.
    """
    from repro.engines import resolve_engine
    from repro.route.global_route import route_placement
    options = ctx["options"]
    spec = resolve_engine("routing", options.routing_engine)
    return route_placement(
        ctx["dft"], engine=spec.name,
        layers=options.routing_layers, gcell_um=options.gcell_um,
        max_iterations=options.routing_iterations,
        seed=options.seed)


def stage_signoff(ctx) -> dict:
    """Timing + power signoff with placement-derived parasitics."""
    from repro.power.analysis import power_report
    from repro.timing import IncrementalTimingAnalyzer, WireModel
    options = ctx["options"]
    placement = ctx["dft"]
    netlist = placement.netlist
    wm = WireModel.for_node(ctx["library"].node,
                            placement.net_lengths())
    with IncrementalTimingAnalyzer(netlist, wm,
                                   options.clock_period_ps) as sta:
        timing = sta.analyze()
    power = power_report(netlist, freq_ghz=options.freq_ghz,
                         patterns=64, seed=options.seed)
    return {"delay_ps": timing.critical_delay_ps,
            "power_uw": power.total_uw}


def build_implement_dag(*, timeout_s: float | None = None,
                        retries: int = 0) -> FlowDAG:
    """The six-stage implementation DAG.

    ``knobs`` per stage narrow cache keys to the options each stage
    actually reads; ``version`` tags let a code change invalidate just
    its own stage's cached results.
    """
    dag = FlowDAG()
    dag.add(Stage("synthesis", stage_synthesis,
                  params=("subject", "library", "options"),
                  knobs=("era", "clock_period_ps", "synth_engine",
                         "sizing_engine"),
                  timeout_s=timeout_s, retries=retries))
    dag.add(Stage("placement", stage_placement,
                  deps=("synthesis",), params=("options",),
                  knobs=("utilization", "place_engine",
                         "spreading_passes", "detailed_passes",
                         "seed"),
                  timeout_s=timeout_s, retries=retries))
    dag.add(Stage("dft", stage_dft,
                  deps=("placement",), params=("options",),
                  knobs=("scan", "scan_chains", "layout_aware_scan"),
                  timeout_s=timeout_s, retries=retries))
    dag.add(Stage("cts", stage_cts,
                  deps=("dft",), params=("options",),
                  knobs=("cts", "cts_engine"), optional=True,
                  timeout_s=timeout_s, retries=retries))
    dag.add(Stage("routing", stage_routing,
                  deps=("dft",), params=("options",),
                  knobs=("routing_engine", "routing_layers",
                         "routing_iterations", "gcell_um", "seed"),
                  timeout_s=timeout_s, retries=retries))
    dag.add(Stage("signoff", stage_signoff,
                  deps=("dft",),
                  params=("library", "options"),
                  knobs=("clock_period_ps", "freq_ghz", "seed"),
                  timeout_s=timeout_s, retries=retries))
    return dag


#: Accepted values for the ``lint`` pre-run gate mode.
LINT_MODES = ("off", "warn", "strict")


def _pre_run_lint(dag, subject, options, mode, sink):
    """The static gate: flow verification plus netlist lint.

    When the gate finds *errors* it records a ``lint`` telemetry span
    (even when the strict gate then refuses the run) whose notes carry
    the rendered findings, so ``lint="warn"`` leaves an audit trail
    without blocking.  Runs without errors stay span-silent: the stage
    span stream is unchanged and the report itself
    (``FlowResult.lint``) is the record that the gate ran —
    warning-level findings live there.
    """
    from repro.lint import LintGateError, lint_flow, lint_netlist
    from repro.netlist.circuit import Netlist
    report = lint_flow(dag, options)
    if isinstance(subject, Netlist):
        report.merge(lint_netlist(subject))
    try:
        if mode == "strict" and report.errors:
            raise LintGateError(report)
    finally:
        if report.errors:
            sink.record(Span(
                "lint", report.wall_s, status="failed",
                notes=tuple(str(f) for f in report.findings[:16])))
    return report


def implement_dag(subject, library, options: FlowOptions | None = None,
                  *, run_db=None, cache=None, telemetry=None,
                  jobs: int = 1, strict: bool = True,
                  dag: FlowDAG | None = None, journal=None,
                  preloaded=None, chaos=None, retry_budget=None,
                  lint: str = "warn",
                  sanitize: bool = False) -> FlowResult:
    """Run the implementation DAG and assemble a :class:`FlowResult`.

    The engine behind :func:`repro.orchestrate.run` (the documented
    facade, which adds crash-safe journaling on top): ``cache`` (a
    :class:`~repro.orchestrate.cache.ResultCache`) replays unchanged
    stages, ``telemetry`` (a :class:`TelemetrySink`) collects spans,
    ``jobs > 1`` runs independent branches in a process pool, and a
    custom ``dag`` swaps in experimental stage graphs.

    Static checks (see :mod:`repro.lint`): ``lint`` gates the run on
    pre-run findings — ``"strict"`` raises
    :class:`~repro.lint.registry.LintGateError` on any unwaived
    error-level finding, ``"warn"`` (the default) records findings in
    the telemetry span and :attr:`FlowResult.lint` but proceeds, and
    ``"off"`` skips the gate.  ``sanitize=True`` additionally re-runs
    the netlist invariant rules at every stage boundary, so the first
    stage that corrupts the design is named in a ``sanitize:<stage>``
    span (and, under ``lint="strict"``, aborts the run).

    Resilience plumbing (see :mod:`repro.orchestrate.resilience`):
    ``journal`` write-ahead-logs each completed stage, ``preloaded``
    seeds journal-replayed outputs so only the frontier re-executes,
    ``chaos`` injects deterministic faults, and ``retry_budget`` caps
    total retries across the run.
    """
    if lint not in LINT_MODES:
        raise ValueError(
            f"lint must be one of {LINT_MODES}, got {lint!r}")
    if options is None:
        options = FlowOptions()
    if dag is None:
        dag = build_implement_dag()
    sink = telemetry if telemetry is not None else TelemetrySink()
    n_before = len(sink.spans)
    lint_report = None
    if lint != "off":
        lint_report = _pre_run_lint(dag, subject, options, lint, sink)
    sanitizer = None
    if sanitize:
        from repro.lint import StageSanitizer
        sanitizer = StageSanitizer(
            mode="strict" if lint == "strict" else "warn")
        sanitizer.baseline(subject)
    executor = SerialExecutor(chaos=chaos) if jobs <= 1 \
        else PoolExecutor(jobs, chaos=chaos)
    run = executor.run(
        dag, {"subject": subject, "library": library,
              "options": options},
        cache=cache, sink=sink, strict=strict, journal=journal,
        preloaded=preloaded, budget=retry_budget,
        sanitizer=sanitizer)

    result = FlowResult.from_run(
        run, options,
        stage_runtimes={s.stage: s.wall_s
                        for s in sink.spans[n_before:]
                        if s.stage != "lint"
                        and not s.stage.startswith("sanitize:")},
        run_id=getattr(journal, "run_id", None))
    result.lint = lint_report
    if sanitizer is not None and sanitizer.reports:
        merged = sanitizer.merged()
        if merged.findings:
            result.lint = (lint_report.merge(merged)
                           if lint_report is not None else merged)
    if run_db is not None:
        _log_run(run_db, result, sink.spans[n_before:])
    return result


def _log_run(run_db, result: FlowResult, spans) -> None:
    """Self-monitoring: persist QoR and telemetry to the run database
    (Rossi's "information useful to the next runs")."""
    from repro.learn.rundb import RunRecord, design_features
    if result.netlist is None:      # failed run: no QoR to learn from
        return
    options = result.options
    run_db.log(RunRecord(
        design=result.netlist.name,
        features=design_features(result.netlist),
        knobs={
            "era": options.era,
            "utilization": options.utilization,
            "spreading_passes": options.spreading_passes,
            "detailed_passes": options.detailed_passes,
            "routing_iterations": options.routing_iterations,
        },
        qor={
            "hpwl_um": result.hpwl_um,
            "overflow": result.overflow,
            "delay_ps": result.delay_ps,
            "power_uw": result.power_uw,
            "runtime_s": result.runtime_s,
        },
        tags=["flow"],
    ))
    if hasattr(run_db, "log_telemetry"):
        run_db.log_telemetry(result.netlist.name, spans)
