"""Flows as DAGs of stages with topological scheduling.

A :class:`Stage` is a pure-ish callable ``fn(ctx) -> value`` where
``ctx`` maps upstream stage names and declared run parameters to
values.  A :class:`FlowDAG` holds stages, validates their dependency
edges, detects cycles, and answers the two scheduling questions the
executors ask: "what order?" (serial) and "what is ready now?"
(parallel branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CycleError(ValueError):
    """The stage graph contains a dependency cycle."""


@dataclass(frozen=True)
class Stage:
    """One node of a flow DAG.

    ``deps`` name upstream stages whose outputs this stage consumes;
    ``params`` name run parameters (e.g. ``"options"``) it reads.  The
    executor builds ``ctx`` from exactly those keys, which doubles as
    the content-hash domain for caching.  ``knobs`` optionally narrows
    the cache key to specific attributes of ``ctx["options"]`` so that
    changing one knob only invalidates the stages that read it.
    """

    name: str
    fn: object
    deps: tuple = ()
    params: tuple = ()
    knobs: tuple = ()
    optional: bool = False      # failure degrades the run, not kills it
    cacheable: bool = True
    version: str = "1"          # bump to invalidate cached results
    timeout_s: float | None = None
    retries: int = 0
    backoff_s: float = 0.01


@dataclass
class FlowDAG:
    """A named collection of stages with dependency edges."""

    stages: dict = field(default_factory=dict)

    def add(self, stage: Stage) -> "FlowDAG":
        """Register a stage; chainable."""
        if stage.name in self.stages:
            raise ValueError(f"duplicate stage {stage.name!r}")
        self.stages[stage.name] = stage
        return self

    def __contains__(self, name: str) -> bool:
        return name in self.stages

    def __len__(self) -> int:
        return len(self.stages)

    @property
    def names(self) -> list:
        return list(self.stages)

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise on edges to stages that do not exist."""
        for stage in self.stages.values():
            for dep in stage.deps:
                if dep not in self.stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown "
                        f"stage {dep!r}")

    def topological_order(self) -> list:
        """Stages in dependency order (Kahn), insertion-order stable.

        Raises :class:`CycleError` naming the offending stages when the
        graph has a cycle.
        """
        self.validate()
        indegree = {n: len(s.deps) for n, s in self.stages.items()}
        ready = [n for n, d in indegree.items() if d == 0]
        order: list = []
        while ready:
            name = ready.pop(0)
            order.append(self.stages[name])
            for other in self.stages.values():
                if name in other.deps:
                    indegree[other.name] -= 1
                    if indegree[other.name] == 0:
                        ready.append(other.name)
        if len(order) < len(self.stages):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise CycleError(f"dependency cycle among stages {stuck}")
        return order

    def ready(self, done, submitted) -> list:
        """Stages whose dependencies are all satisfied and which have
        not yet been submitted — the parallel executor's work queue."""
        out = []
        for name, stage in self.stages.items():
            if name in done or name in submitted:
                continue
            if all(dep in done for dep in stage.deps):
                out.append(stage)
        return out

    def dependents(self, name: str) -> set:
        """Transitive downstream closure of a stage (for failure
        propagation: everything here is skipped when ``name`` dies)."""
        out: set = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for other in self.stages.values():
                if current in other.deps and other.name not in out:
                    out.add(other.name)
                    frontier.append(other.name)
        return out
