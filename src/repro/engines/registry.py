"""The engine registry: one catalog of stage engines and their knobs.

Placement grew a second engine in PR 7 and routing grows one now; both
subsystems previously validated their ``engine=`` strings ad hoc (a
typo fell through to a ``ValueError`` deep inside a worker process, or
worse, to a silent default).  This module centralizes that:

* Engines register by ``(stage, name)`` with a loader (deferred
  import, so registering every engine costs nothing at import time), a
  description, and a *knob schema* — the :class:`FlowOptions` fields
  the engine honors, each with an optional value check.
* :func:`get_engine` is the strict lookup: unknown names raise
  :class:`UnknownEngineError` (a ``ValueError``) naming the stage, the
  known engines, and the closest spelling.
* :func:`resolve_engine` is the execution-time lookup: deprecated
  aliases map to their successor with a ``DeprecationWarning``, and a
  name the registry has never heard of falls back to the stage default
  (again with a warning) instead of killing the run — old journals and
  cache blobs keep decoding after an engine is renamed or retired.
* :func:`validate_options` runs the strict check at *option
  construction* time, so ``FlowOptions(routing_engine="mase")`` is an
  early ``ValueError`` in the caller's stack, not a mid-flow surprise.
"""

from __future__ import annotations

import difflib
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable


class UnknownEngineError(ValueError):
    """An engine name the registry does not know (and no alias maps)."""


@dataclass(frozen=True)
class Knob:
    """One option field an engine honors.

    ``check`` (when given) receives the option value and returns
    whether it is acceptable; ``doc`` explains the constraint in the
    error message.
    """

    name: str
    doc: str = ""
    check: Callable[[Any], bool] | None = None


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: identity, loader, and knob schema."""

    stage: str
    name: str
    loader: Callable[[], Callable[..., Any]]
    description: str = ""
    knobs: tuple[Knob, ...] = ()
    default: bool = False

    def load(self) -> Callable[..., Any]:
        """Import and return the engine callable (deferred)."""
        return self.loader()


@dataclass
class _Registry:
    specs: dict[tuple[str, str], EngineSpec] = field(default_factory=dict)
    aliases: dict[tuple[str, str], str] = field(default_factory=dict)
    defaults: dict[str, str] = field(default_factory=dict)


_REGISTRY = _Registry()


def register(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the registry; duplicate ``(stage, name)`` raises."""
    key = (spec.stage, spec.name)
    if key in _REGISTRY.specs:
        raise ValueError(f"engine {spec.name!r} already registered "
                         f"for stage {spec.stage!r}")
    _REGISTRY.specs[key] = spec
    if spec.default:
        if spec.stage in _REGISTRY.defaults:
            raise ValueError(f"stage {spec.stage!r} already has a "
                             f"default engine "
                             f"({_REGISTRY.defaults[spec.stage]!r})")
        _REGISTRY.defaults[spec.stage] = spec.name
    return spec


def register_alias(stage: str, old: str, new: str) -> None:
    """Map a retired engine name onto its successor (deprecation shim)."""
    _REGISTRY.aliases[(stage, old)] = new


def engine_names(stage: str) -> tuple[str, ...]:
    """The registered engine names for a stage, registration order."""
    return tuple(name for (s, name) in _REGISTRY.specs if s == stage)


def stage_names() -> tuple[str, ...]:
    """Every stage with at least one registered engine, first-seen
    order."""
    seen: list[str] = []
    for stage, _ in _REGISTRY.specs:
        if stage not in seen:
            seen.append(stage)
    return tuple(seen)


def axes() -> dict[str, tuple[str, ...]]:
    """The full ablation grid: stage -> registered engine names.

    One source of truth for sweep and tuning tooling
    (:func:`repro.learn.tuner.engine_space`,
    :func:`repro.orchestrate.sweep.engine_grid_options`): anything that
    wants to enumerate "every engine of every stage" reads this map
    instead of hard-coding names that rot when an engine is added or
    retired.
    """
    return {stage: engine_names(stage) for stage in stage_names()}


def stage_aliases(stage: str) -> dict[str, str]:
    """The stage's deprecation shims: retired name -> successor."""
    return {old: new for (s, old), new in _REGISTRY.aliases.items()
            if s == stage}


def default_engine(stage: str) -> str:
    """The stage's default engine name."""
    try:
        return _REGISTRY.defaults[stage]
    except KeyError:
        raise UnknownEngineError(
            f"no engines registered for stage {stage!r}") from None


def get_engine(stage: str, name: str) -> EngineSpec:
    """Strict lookup: deprecated aliases resolve, unknown names raise."""
    spec = _REGISTRY.specs.get((stage, name))
    if spec is not None:
        return spec
    alias = _REGISTRY.aliases.get((stage, name))
    if alias is not None:
        warnings.warn(
            f"{stage} engine {name!r} is deprecated; use {alias!r}",
            DeprecationWarning, stacklevel=2)
        return _REGISTRY.specs[(stage, alias)]
    known = engine_names(stage)
    if not known:
        raise UnknownEngineError(
            f"no engines registered for stage {stage!r}")
    hint = ""
    close = difflib.get_close_matches(name, known, n=1)
    if close:
        hint = f" (did you mean {close[0]!r}?)"
    raise UnknownEngineError(
        f"unknown {stage} engine {name!r}; known engines: "
        f"{', '.join(repr(k) for k in known)}{hint}")


def resolve_engine(stage: str, name: str) -> EngineSpec:
    """Execution-time lookup that never raises on a decodable record.

    Exact names and deprecated aliases resolve like :func:`get_engine`;
    a name the registry has never heard of — an old journal or cache
    blob written by a build whose engine was since retired — falls back
    to the stage default with a ``DeprecationWarning`` so the replay
    can proceed.
    """
    try:
        return get_engine(stage, name)
    except UnknownEngineError:
        fallback = default_engine(stage)
        warnings.warn(
            f"unknown {stage} engine {name!r} (old journal/cache?); "
            f"falling back to the default {fallback!r}",
            DeprecationWarning, stacklevel=2)
        return _REGISTRY.specs[(stage, fallback)]


#: (stage, FlowOptions attribute) pairs validated at option construction.
OPTION_ENGINE_FIELDS: tuple[tuple[str, str], ...] = (
    ("synthesis", "synth_engine"),
    ("placement", "place_engine"),
    ("cts", "cts_engine"),
    ("routing", "routing_engine"),
    ("sizing", "sizing_engine"),
)


def validate_options(options: Any) -> None:
    """Early validation of every engine knob on an options object.

    For each engine-selection field: the engine must exist for its
    stage (typo -> :class:`UnknownEngineError` here, in the
    constructor's stack), deprecated aliases are rewritten to their
    canonical name (with a warning), and the engine's knob checks run
    against the option values they constrain.
    """
    for stage, attr in OPTION_ENGINE_FIELDS:
        name = getattr(options, attr, None)
        if name is None:
            continue
        try:
            spec = get_engine(stage, name)
        except UnknownEngineError as exc:
            raise UnknownEngineError(f"{attr}: {exc}") from None
        if spec.name != name:            # alias: canonicalize in place
            setattr(options, attr, spec.name)
        for knob in spec.knobs:
            if knob.check is None or not hasattr(options, knob.name):
                continue
            value = getattr(options, knob.name)
            if not knob.check(value):
                raise ValueError(
                    f"{attr}={spec.name!r}: bad {knob.name}={value!r}"
                    f" ({knob.doc})")
