"""``repro.engines``: the shared stage-engine registry.

Both physical stages resolve their implementation through this one
catalog: placement (``analytic`` | ``quadratic``) and routing
(``batched`` | ``maze`` | ``line_search``).  Each engine registers a
deferred loader returning a *uniform per-stage kernel signature*, so
flow code never branches on engine names:

* placement kernels: ``fn(design, *, utilization, seed,
  spreading_passes, detailed_passes) -> Placement``
* routing kernels: ``fn(placement, *, layers, gcell_um, topology,
  max_iterations, seed, telemetry) -> RoutingResult``

:class:`~repro.core.flow.FlowOptions` validates its ``place_engine`` /
``routing_engine`` fields here at construction time (typos raise
early), while :func:`resolve_engine` keeps old journals and cache
blobs decodable through deprecated-alias and unknown-name fallbacks.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engines.registry import (
    EngineSpec,
    Knob,
    UnknownEngineError,
    default_engine,
    engine_names,
    get_engine,
    register,
    register_alias,
    resolve_engine,
    validate_options,
)

__all__ = [
    "EngineSpec",
    "Knob",
    "UnknownEngineError",
    "default_engine",
    "engine_names",
    "get_engine",
    "register",
    "register_alias",
    "resolve_engine",
    "validate_options",
]


# ----------------------------------------------------------------------
# Placement engines (kernel signature: design, *, utilization, seed,
# spreading_passes, detailed_passes).


def _load_place_analytic() -> Callable[..., Any]:
    from repro.place.analytic import analytic_place

    def kernel(design: Any, *, utilization: float, seed: int,
               spreading_passes: int, detailed_passes: int) -> Any:
        # ``spreading_passes`` maps onto the electrostatic iteration
        # budget (8 iterations/pass; the default 3 passes is the
        # engine's native budget of 24) so the knob stays meaningful
        # everywhere it appears in the cache key.
        return analytic_place(
            design, utilization=utilization, seed=seed,
            max_iterations=8 * spreading_passes,
            detailed_passes=detailed_passes)

    return kernel


def _load_place_quadratic() -> Callable[..., Any]:
    from repro.place.detailed import detailed_place
    from repro.place.global_place import global_place

    def kernel(design: Any, *, utilization: float, seed: int,
               spreading_passes: int, detailed_passes: int) -> Any:
        placement = global_place(
            design, utilization=utilization,
            spreading_passes=spreading_passes, seed=seed)
        if detailed_passes:
            detailed_place(placement, passes=detailed_passes,
                           seed=seed)
        return placement

    return kernel


_PLACE_KNOBS = (
    Knob("utilization", "in (0, 1]",
         lambda v: isinstance(v, (int, float)) and 0 < v <= 1),
    Knob("spreading_passes", ">= 1",
         lambda v: isinstance(v, int) and v >= 1),
    Knob("detailed_passes", ">= 0",
         lambda v: isinstance(v, int) and v >= 0),
    Knob("seed", "an int", lambda v: isinstance(v, int)),
)

register(EngineSpec(
    stage="placement", name="analytic", loader=_load_place_analytic,
    description="vectorized ePlace-style CSR-native placer (PR 7)",
    knobs=_PLACE_KNOBS, default=True))
register(EngineSpec(
    stage="placement", name="quadratic", loader=_load_place_quadratic,
    description="object-graph quadratic placer (QoR baseline)",
    knobs=_PLACE_KNOBS))
register_alias("placement", "eplace", "analytic")
register_alias("placement", "force_directed", "quadratic")


# ----------------------------------------------------------------------
# Routing engines (kernel signature: placement, *, layers, gcell_um,
# topology, max_iterations, seed, telemetry).


def _load_route_batched() -> Callable[..., Any]:
    from repro.route.batched import batched_route
    return batched_route


def _load_route_maze() -> Callable[..., Any]:
    from repro.route.global_route import sequential_route

    def kernel(placement: Any, **kwargs: Any) -> Any:
        return sequential_route(placement, engine="maze", **kwargs)

    return kernel


def _load_route_line_search() -> Callable[..., Any]:
    from repro.route.global_route import sequential_route

    def kernel(placement: Any, **kwargs: Any) -> Any:
        return sequential_route(placement, engine="line_search",
                                **kwargs)

    return kernel


_ROUTE_KNOBS = (
    Knob("routing_layers", ">= 2 metal layers",
         lambda v: isinstance(v, int) and v >= 2),
    Knob("routing_iterations", ">= 1",
         lambda v: isinstance(v, int) and v >= 1),
    Knob("gcell_um", "a positive gcell pitch",
         lambda v: isinstance(v, (int, float)) and v > 0),
    Knob("seed", "an int", lambda v: isinstance(v, int)),
)

register(EngineSpec(
    stage="routing", name="batched", loader=_load_route_batched,
    description="vectorized batched wavefront router with "
                "negotiated-congestion arrays",
    knobs=_ROUTE_KNOBS, default=True))
register(EngineSpec(
    stage="routing", name="maze", loader=_load_route_maze,
    description="sequential A* maze router (QoR baseline)",
    knobs=_ROUTE_KNOBS))
register(EngineSpec(
    stage="routing", name="line_search", loader=_load_route_line_search,
    description="Hightower line-probe router with maze fallback",
    knobs=_ROUTE_KNOBS))
register_alias("routing", "line-search", "line_search")
register_alias("routing", "lee", "maze")
