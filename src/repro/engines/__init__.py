"""``repro.engines``: the shared stage-engine registry.

Every flow stage resolves its implementation through this one catalog:
synthesis (``area`` | ``delay`` | ``trivial``), placement
(``analytic`` | ``quadratic``), CTS (``htree`` | ``spine``), routing
(``batched`` | ``maze`` | ``line_search``), and sizing
(``incremental`` | ``scalar``).  Each engine registers a deferred
loader returning a *uniform per-stage kernel signature*, so flow code
never branches on engine names:

* synthesis kernels (the mapper path of
  :class:`~repro.synthesis.flow.SynthesisFlow`): ``fn(aig, library, *,
  cut_size, cell_filter) -> Netlist``
* placement kernels: ``fn(design, *, utilization, seed,
  spreading_passes, detailed_passes) -> Placement``
* CTS kernels: ``fn(placement) -> ClockTree``
* routing kernels: ``fn(placement, *, layers, gcell_um, topology,
  max_iterations, seed, telemetry) -> RoutingResult``
* sizing kernels (the hot STA loop of
  :func:`~repro.synthesis.sizing.size_gates`): ``fn(netlist, *,
  wire_model, clock_period_ps) -> dict``

:class:`~repro.core.flow.FlowOptions` validates its engine-selection
fields (``synth_engine``, ``place_engine``, ``cts_engine``,
``routing_engine``, ``sizing_engine``) here at construction time
(typos raise early), while :func:`resolve_engine` keeps old journals
and cache blobs decodable through deprecated-alias and unknown-name
fallbacks.  :func:`axes` exposes the whole grid (stage -> engine
names) so sweep and tuning tooling enumerates ablations from one
source of truth, and ``python -m repro.engines`` renders the catalog
(text or JSON) for humans and scripts.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engines.registry import (
    EngineSpec,
    Knob,
    UnknownEngineError,
    axes,
    default_engine,
    engine_names,
    get_engine,
    register,
    register_alias,
    resolve_engine,
    stage_aliases,
    stage_names,
    validate_options,
)

__all__ = [
    "EngineSpec",
    "Knob",
    "UnknownEngineError",
    "axes",
    "default_engine",
    "engine_names",
    "get_engine",
    "register",
    "register_alias",
    "resolve_engine",
    "stage_aliases",
    "stage_names",
    "validate_options",
]


# ----------------------------------------------------------------------
# Synthesis engines (kernel signature: aig, library, *, cut_size,
# cell_filter).  The engine picks the mapper; the era recipe keeps
# choosing the optimization script, cut size, and cell filter around
# it.


def _load_synth_area() -> Callable[..., Any]:
    from repro.synthesis.mapping import map_aig

    def kernel(aig: Any, library: Any, *, cut_size: int,
               cell_filter: Any) -> Any:
        return map_aig(aig, library, mode="area", cut_size=cut_size,
                       cell_filter=cell_filter)

    return kernel


def _load_synth_delay() -> Callable[..., Any]:
    from repro.synthesis.mapping import map_aig

    def kernel(aig: Any, library: Any, *, cut_size: int,
               cell_filter: Any) -> Any:
        return map_aig(aig, library, mode="delay", cut_size=cut_size,
                       cell_filter=cell_filter)

    return kernel


def _load_synth_trivial() -> Callable[..., Any]:
    from repro.synthesis.mapping import trivial_map

    def kernel(aig: Any, library: Any, *, cut_size: int,
               cell_filter: Any) -> Any:
        # The debug engine ignores mapper tuning: one AND2 per node,
        # INVs on negated edges, whatever the era recipe asked for.
        return trivial_map(aig, library)

    return kernel


_SYNTH_KNOBS = (
    Knob("era", "one of the era recipes",
         lambda v: isinstance(v, str)),
    Knob("clock_period_ps", "> 0",
         lambda v: isinstance(v, (int, float)) and v > 0),
)

register(EngineSpec(
    stage="synthesis", name="area", loader=_load_synth_area,
    description="cut-based mapping minimizing total cell area",
    knobs=_SYNTH_KNOBS, default=True))
register(EngineSpec(
    stage="synthesis", name="delay", loader=_load_synth_delay,
    description="cut-based mapping minimizing worst arrival time",
    knobs=_SYNTH_KNOBS))
register(EngineSpec(
    stage="synthesis", name="trivial", loader=_load_synth_trivial,
    description="1-to-1 AND2/INV mapping (debug / strawman baseline)",
    knobs=_SYNTH_KNOBS))
register_alias("synthesis", "min_area", "area")
register_alias("synthesis", "min_delay", "delay")


# ----------------------------------------------------------------------
# Placement engines (kernel signature: design, *, utilization, seed,
# spreading_passes, detailed_passes).


def _load_place_analytic() -> Callable[..., Any]:
    from repro.place.analytic import analytic_place

    def kernel(design: Any, *, utilization: float, seed: int,
               spreading_passes: int, detailed_passes: int) -> Any:
        # ``spreading_passes`` maps onto the electrostatic iteration
        # budget (8 iterations/pass; the default 3 passes is the
        # engine's native budget of 24) so the knob stays meaningful
        # everywhere it appears in the cache key.
        return analytic_place(
            design, utilization=utilization, seed=seed,
            max_iterations=8 * spreading_passes,
            detailed_passes=detailed_passes)

    return kernel


def _load_place_quadratic() -> Callable[..., Any]:
    from repro.place.detailed import detailed_place
    from repro.place.global_place import global_place

    def kernel(design: Any, *, utilization: float, seed: int,
               spreading_passes: int, detailed_passes: int) -> Any:
        placement = global_place(
            design, utilization=utilization,
            spreading_passes=spreading_passes, seed=seed)
        if detailed_passes:
            detailed_place(placement, passes=detailed_passes,
                           seed=seed)
        return placement

    return kernel


_PLACE_KNOBS = (
    Knob("utilization", "in (0, 1]",
         lambda v: isinstance(v, (int, float)) and 0 < v <= 1),
    Knob("spreading_passes", ">= 1",
         lambda v: isinstance(v, int) and v >= 1),
    Knob("detailed_passes", ">= 0",
         lambda v: isinstance(v, int) and v >= 0),
    Knob("seed", "an int", lambda v: isinstance(v, int)),
)

register(EngineSpec(
    stage="placement", name="analytic", loader=_load_place_analytic,
    description="vectorized ePlace-style CSR-native placer (PR 7)",
    knobs=_PLACE_KNOBS, default=True))
register(EngineSpec(
    stage="placement", name="quadratic", loader=_load_place_quadratic,
    description="object-graph quadratic placer (QoR baseline)",
    knobs=_PLACE_KNOBS))
register_alias("placement", "eplace", "analytic")
register_alias("placement", "force_directed", "quadratic")


# ----------------------------------------------------------------------
# Routing engines (kernel signature: placement, *, layers, gcell_um,
# topology, max_iterations, seed, telemetry).


def _load_route_batched() -> Callable[..., Any]:
    from repro.route.batched import batched_route
    return batched_route


def _load_route_maze() -> Callable[..., Any]:
    from repro.route.global_route import sequential_route

    def kernel(placement: Any, **kwargs: Any) -> Any:
        return sequential_route(placement, engine="maze", **kwargs)

    return kernel


def _load_route_line_search() -> Callable[..., Any]:
    from repro.route.global_route import sequential_route

    def kernel(placement: Any, **kwargs: Any) -> Any:
        return sequential_route(placement, engine="line_search",
                                **kwargs)

    return kernel


_ROUTE_KNOBS = (
    Knob("routing_layers", ">= 2 metal layers",
         lambda v: isinstance(v, int) and v >= 2),
    Knob("routing_iterations", ">= 1",
         lambda v: isinstance(v, int) and v >= 1),
    Knob("gcell_um", "a positive gcell pitch",
         lambda v: isinstance(v, (int, float)) and v > 0),
    Knob("seed", "an int", lambda v: isinstance(v, int)),
)

register(EngineSpec(
    stage="routing", name="batched", loader=_load_route_batched,
    description="vectorized batched wavefront router with "
                "negotiated-congestion arrays",
    knobs=_ROUTE_KNOBS, default=True))
register(EngineSpec(
    stage="routing", name="maze", loader=_load_route_maze,
    description="sequential A* maze router (QoR baseline)",
    knobs=_ROUTE_KNOBS))
register(EngineSpec(
    stage="routing", name="line_search", loader=_load_route_line_search,
    description="Hightower line-probe router with maze fallback",
    knobs=_ROUTE_KNOBS))
register_alias("routing", "line-search", "line_search")
register_alias("routing", "lee", "maze")


# ----------------------------------------------------------------------
# CTS engines (kernel signature: placement -> ClockTree).


def _load_cts_htree() -> Callable[..., Any]:
    from repro.timing.cts import synthesize_clock_tree

    def kernel(placement: Any) -> Any:
        return synthesize_clock_tree(placement)

    return kernel


def _load_cts_spine() -> Callable[..., Any]:
    from repro.timing.cts import naive_clock_spine
    return naive_clock_spine


_CTS_KNOBS = (
    Knob("cts", "a bool", lambda v: isinstance(v, bool)),
)

register(EngineSpec(
    stage="cts", name="htree", loader=_load_cts_htree,
    description="recursive-bisection balanced clock tree (H-tree "
                "style, buffered segments)",
    knobs=_CTS_KNOBS, default=True))
register(EngineSpec(
    stage="cts", name="spine", loader=_load_cts_spine,
    description="serpentine clock spine (ablation strawman: skew "
                "grows with chain length)",
    knobs=_CTS_KNOBS))
register_alias("cts", "naive_spine", "spine")
register_alias("cts", "bisection", "htree")


# ----------------------------------------------------------------------
# Sizing engines (kernel signature: netlist, *, wire_model,
# clock_period_ps).  Both run the same upsizing loop; the engine picks
# the timing analyzer behind each trial resize — results are
# bit-identical, only the STA cost differs.


def _load_sizing_incremental() -> Callable[..., Any]:
    from repro.synthesis.sizing import size_gates

    def kernel(netlist: Any, *, wire_model: Any,
               clock_period_ps: float) -> Any:
        return size_gates(netlist, wire_model=wire_model,
                          clock_period_ps=clock_period_ps,
                          incremental=True)

    return kernel


def _load_sizing_scalar() -> Callable[..., Any]:
    from repro.synthesis.sizing import size_gates

    def kernel(netlist: Any, *, wire_model: Any,
               clock_period_ps: float) -> Any:
        return size_gates(netlist, wire_model=wire_model,
                          clock_period_ps=clock_period_ps,
                          incremental=False)

    return kernel


_SIZING_KNOBS = (
    Knob("clock_period_ps", "> 0",
         lambda v: isinstance(v, (int, float)) and v > 0),
)

register(EngineSpec(
    stage="sizing", name="incremental",
    loader=_load_sizing_incremental,
    description="journaled resizes with cone-limited incremental STA "
                "per trial",
    knobs=_SIZING_KNOBS, default=True))
register(EngineSpec(
    stage="sizing", name="scalar", loader=_load_sizing_scalar,
    description="full scalar STA per trial resize (pre-incremental "
                "QoR reference)",
    knobs=_SIZING_KNOBS))
register_alias("sizing", "journaled", "incremental")
register_alias("sizing", "full_sta", "scalar")
