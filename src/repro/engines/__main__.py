"""``python -m repro.engines``: render the stage-engine catalog.

The enumerable knob surface in human and machine form: every stage,
its registered engines (default first-class, descriptions, honored
knobs), and its deprecation aliases.  The docs quote the text output;
sweep tooling consumes ``--json`` (the payload mirrors
:func:`repro.engines.axes` plus per-engine metadata, so a script can
build the full ablation grid without importing the package).

    python -m repro.engines                 # every stage, text
    python -m repro.engines cts             # one stage
    python -m repro.engines --json          # machine-readable catalog
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.engines import (
    default_engine,
    engine_names,
    get_engine,
    stage_aliases,
    stage_names,
)


def catalog(stages: tuple[str, ...]) -> dict[str, Any]:
    """The catalog as one JSON-ready dict, stage registration order."""
    out: dict[str, Any] = {}
    for stage in stages:
        aliases = stage_aliases(stage)
        out[stage] = {
            "default": default_engine(stage),
            "engines": [
                {
                    "name": spec.name,
                    "default": spec.default,
                    "description": spec.description,
                    "knobs": [knob.name for knob in spec.knobs],
                }
                for spec in (get_engine(stage, name)
                             for name in engine_names(stage))
            ],
            "aliases": [
                {"name": old, "use": new, "deprecated": True}
                for old, new in sorted(aliases.items())
            ],
        }
    return out


def render_text(data: dict[str, Any]) -> str:
    """The human-facing listing, one block per stage."""
    lines: list[str] = []
    for stage, info in data.items():
        lines.append(f"{stage} (default: {info['default']})")
        for engine in info["engines"]:
            marker = "*" if engine["default"] else " "
            lines.append(f"  {marker} {engine['name']:<12} "
                         f"{engine['description']}")
            if engine["knobs"]:
                lines.append(f"      knobs: "
                             f"{', '.join(engine['knobs'])}")
        for alias in info["aliases"]:
            lines.append(f"    {alias['name']:<12} deprecated -> "
                         f"use {alias['use']!r}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engines", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("stage", nargs="?",
                        help="restrict to one stage (default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit the catalog as JSON")
    args = parser.parse_args(argv)
    stages = stage_names()
    if args.stage is not None:
        if args.stage not in stages:
            print(f"unknown stage {args.stage!r}; stages: "
                  f"{', '.join(stages)}", file=sys.stderr)
            return 2
        stages = (args.stage,)
    data = catalog(stages)
    if args.json:
        json.dump(data, sys.stdout, indent=1)
        print()
    else:
        sys.stdout.write(render_text(data))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
