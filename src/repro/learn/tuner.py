"""Knob tuning: successive halving, warm-started from the run DB.

:func:`engine_space` bridges the tuner to the
:mod:`repro.engines` registry: the engine choice of every flow stage
becomes an ordinary categorical knob axis, so an ablation or tuning
session enumerates "every engine of every stage" from the registry's
one source of truth instead of a hand-maintained list.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.learn.rundb import RunDatabase, RunRecord


@dataclass
class KnobSpace:
    """The tunable knobs: name -> list of candidate values."""

    knobs: dict

    def __post_init__(self) -> None:
        if not self.knobs:
            raise ValueError("knob space is empty")
        for name, values in self.knobs.items():
            if not values:
                raise ValueError(f"knob {name!r} has no candidates")

    def grid(self) -> list:
        """Every combination as a dict."""
        names = sorted(self.knobs)
        out = []
        for combo in itertools.product(*(self.knobs[n] for n in names)):
            out.append(dict(zip(names, combo)))
        return out

    def sample(self, count: int, seed: int = 0) -> list:
        """Random subset of the grid (without replacement)."""
        grid = self.grid()
        rng = np.random.default_rng(seed)
        if count >= len(grid):
            return grid
        idx = rng.choice(len(grid), size=count, replace=False)
        return [grid[i] for i in idx]


def engine_space(stages: tuple | list | None = None) -> KnobSpace:
    """A :class:`KnobSpace` over the registry's engine axes.

    Each axis is keyed by the :class:`~repro.core.flow.FlowOptions`
    field that selects the stage's engine (``synth_engine``,
    ``place_engine``, ...), with the registered engine names as
    candidates — so ``engine_space().grid()`` entries splat straight
    into ``FlowOptions(**knobs)``.  ``stages`` restricts the space
    (e.g. ``("synthesis", "cts", "sizing")`` for a
    synthesis×CTS×sizing ablation); stages without a FlowOptions
    selector are skipped.
    """
    from repro.engines import axes
    from repro.engines.registry import OPTION_ENGINE_FIELDS
    field_of = dict(OPTION_ENGINE_FIELDS)
    knobs = {}
    for stage, names in axes().items():
        if stages is not None and stage not in stages:
            continue
        attr = field_of.get(stage)
        if attr is None:
            continue
        knobs[attr] = list(names)
    if not knobs:
        raise ValueError(f"no engine axes for stages {stages!r}")
    return KnobSpace(knobs)


@dataclass
class TuneResult:
    """Outcome of a tuning session."""

    best_knobs: dict
    best_score: float
    evaluations: int
    history: list = field(default_factory=list)  # (knobs, score)
    warm_started: bool = False


def tune_knobs(evaluate, space: KnobSpace, *,
               db: RunDatabase | None = None,
               design_features: dict | None = None,
               metric: str = "score",
               budget: int = 12, survivors: int = 3,
               seed: int = 0, log_to_db: bool = True) -> TuneResult:
    """Successive-halving search over the knob space.

    ``evaluate(knobs) -> float`` (lower is better; e.g. HPWL or a
    weighted QoR blend).  With a run database and design features the
    initial candidate set is seeded with the best knobs of similar past
    runs — the "exploiting an exhaustive set of information" step that
    makes results consistent across designs.
    """
    if budget < 2:
        raise ValueError("budget must be at least 2")
    candidates = space.sample(budget, seed=seed)
    warm = False
    if db is not None and design_features is not None and len(db):
        prior = db.best_knobs(design_features, metric)
        if prior is not None and prior not in candidates:
            candidates[0] = prior
            warm = True

    history = []
    evaluations = 0
    scores = []
    for knobs in candidates:
        score = float(evaluate(knobs))
        evaluations += 1
        history.append((knobs, score))
        scores.append(score)
    order = np.argsort(scores)
    finalists = [candidates[i] for i in order[:max(survivors, 1)]]
    # Refinement round: re-evaluate finalists (captures run-to-run
    # noise the way a real halving schedule does) and pick the best
    # average.
    final_scores = []
    for knobs in finalists:
        score = float(evaluate(knobs))
        evaluations += 1
        history.append((knobs, score))
        prev = next(s for k, s in history if k == knobs)
        final_scores.append((score + prev) / 2)
    best_idx = int(np.argmin(final_scores))
    best = finalists[best_idx]
    best_score = final_scores[best_idx]
    if db is not None and log_to_db:
        db.log(RunRecord(
            design="tuning",
            features=design_features or {},
            knobs=best,
            qor={metric: best_score},
            tags=["tuner"],
        ))
    return TuneResult(
        best_knobs=best,
        best_score=best_score,
        evaluations=evaluations,
        history=history,
        warm_started=warm,
    )
