"""Ridge-regression QoR prediction from the run database."""

from __future__ import annotations

import numpy as np

from repro.learn.rundb import RunDatabase


class QorPredictor:
    """Predict a QoR metric from design features plus knob settings.

    Plain ridge regression on standardized inputs — deliberately simple
    and auditable, as a built-in tool feature would need to be.
    """

    def __init__(self, feature_keys: list, knob_keys: list,
                 metric: str, *, ridge: float = 1.0):
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        self.feature_keys = list(feature_keys)
        self.knob_keys = list(knob_keys)
        self.metric = metric
        self.ridge = ridge
        self._w = None
        self._mean = None
        self._std = None

    # ------------------------------------------------------------------

    def _vectorize(self, features: dict, knobs: dict) -> np.ndarray:
        vals = [float(features.get(k, 0.0)) for k in self.feature_keys]
        vals += [float(knobs.get(k, 0.0)) for k in self.knob_keys]
        return np.array(vals)

    def fit(self, db: RunDatabase) -> int:
        """Train on every record carrying the metric; returns count."""
        rows = []
        ys = []
        for rec in db.records:
            if self.metric not in rec.qor:
                continue
            rows.append(self._vectorize(rec.features, rec.knobs))
            ys.append(float(rec.qor[self.metric]))
        if len(rows) < 2:
            raise ValueError("need at least two runs to fit")
        x = np.array(rows)
        y = np.array(ys)
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std[self._std == 0] = 1.0
        xn = (x - self._mean) / self._std
        xn = np.column_stack([xn, np.ones(len(xn))])
        a = xn.T @ xn + self.ridge * np.eye(xn.shape[1])
        self._w = np.linalg.solve(a, xn.T @ y)
        return len(rows)

    def predict(self, features: dict, knobs: dict) -> float:
        """Predicted metric value."""
        if self._w is None:
            raise RuntimeError("predictor not fitted")
        x = (self._vectorize(features, knobs) - self._mean) / self._std
        return float(np.append(x, 1.0) @ self._w)

    def rank_knob_options(self, features: dict, options: list) -> list:
        """Options sorted by predicted metric (best first)."""
        return sorted(options,
                      key=lambda k: self.predict(features, k))
