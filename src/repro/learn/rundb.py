"""The run database: self-monitoring of implementation runs."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.netlist.circuit import Netlist


@dataclass
class RunRecord:
    """One logged implementation run."""

    design: str
    features: dict           # design fingerprint (see design_features)
    knobs: dict              # tool settings used
    qor: dict                # measured results (hpwl, overflow, ...)
    tags: list = field(default_factory=list)


def design_features(netlist: Netlist) -> dict:
    """A design fingerprint for similarity lookup.

    Deliberately cheap: instance count, average fanout, sequential
    ratio, area — the features a tool has before placement starts.
    """
    gates = list(netlist.gates.values())
    if not gates:
        return {"instances": 0, "avg_fanout": 0.0, "seq_ratio": 0.0,
                "area_um2": 0.0}
    fanout = netlist.fanout_map()
    loads = [len(v) for v in fanout.values()]
    seq = sum(1 for g in gates if g.cell.is_sequential)
    return {
        "instances": len(gates),
        "avg_fanout": sum(loads) / max(len(loads), 1),
        "seq_ratio": seq / len(gates),
        "area_um2": netlist.area_um2(),
    }


class RunDatabase:
    """Accumulates run records; queryable by design similarity."""

    def __init__(self):
        self.records: list[RunRecord] = []

    def log(self, record: RunRecord) -> None:
        """Add a run."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def similar_runs(self, features: dict, *, limit: int = 10) -> list:
        """Records nearest to a design fingerprint.

        Distance: normalized L1 over the shared numeric features.
        """
        def distance(rec: RunRecord) -> float:
            d = 0.0
            for key, val in features.items():
                other = rec.features.get(key)
                if other is None:
                    continue
                scale = max(abs(val), abs(other), 1e-9)
                d += abs(val - other) / scale
            return d
        return sorted(self.records, key=distance)[:limit]

    def best_knobs(self, features: dict, metric: str, *,
                   limit: int = 10) -> dict | None:
        """Knobs of the best similar run by ``metric`` (lower wins)."""
        candidates = [
            r for r in self.similar_runs(features, limit=limit)
            if metric in r.qor
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.qor[metric]).knobs

    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist to JSON."""
        payload = [asdict(r) for r in self.records]
        Path(path).write_text(json.dumps(payload, indent=1))

    @staticmethod
    def load(path) -> "RunDatabase":
        """Load from JSON."""
        db = RunDatabase()
        for item in json.loads(Path(path).read_text()):
            db.log(RunRecord(**item))
        return db
