"""The run database: self-monitoring of implementation runs."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.netlist.circuit import Netlist


@dataclass
class RunRecord:
    """One logged implementation run."""

    design: str
    features: dict           # design fingerprint (see design_features)
    knobs: dict              # tool settings used
    qor: dict                # measured results (hpwl, overflow, ...)
    tags: list = field(default_factory=list)


@dataclass
class TelemetryRecord:
    """One per-stage telemetry span of an implementation run.

    Mirrors :class:`repro.orchestrate.telemetry.Span` plus the design
    it belongs to, so stage-level cost and cache behaviour persist
    alongside the QoR records they explain.
    """

    design: str
    stage: str
    wall_s: float
    status: str = "ok"
    cache: str | None = None
    retries: int = 0
    peak_rss_kb: int | None = None
    leaked_threads: int = 0


@dataclass
class RecoveryRecord:
    """One journal-resumed run (see
    :func:`repro.orchestrate.resilience.resume_run`).

    ``replayed`` counts stages restored from the write-ahead journal,
    ``executed`` the frontier stages that actually re-ran — the ratio
    is the work a crash did *not* cost, the metric behind the
    checkpoint/resume design.
    """

    run_id: str
    design: str
    replayed: int
    executed: int
    status: str = "resumed"


def design_features(netlist: Netlist) -> dict:
    """A design fingerprint for similarity lookup.

    Deliberately cheap: instance count, average fanout, sequential
    ratio, area — the features a tool has before placement starts.
    """
    gates = list(netlist.gates.values())
    if not gates:
        return {"instances": 0, "avg_fanout": 0.0, "seq_ratio": 0.0,
                "area_um2": 0.0}
    fanout = netlist.fanout_map()
    loads = [len(v) for v in fanout.values()]
    seq = sum(1 for g in gates if g.cell.is_sequential)
    return {
        "instances": len(gates),
        "avg_fanout": sum(loads) / max(len(loads), 1),
        "seq_ratio": seq / len(gates),
        "area_um2": netlist.area_um2(),
    }


class RunDatabase:
    """Accumulates run records; queryable by design similarity."""

    def __init__(self):
        self.records: list[RunRecord] = []
        self.telemetry: list[TelemetryRecord] = []
        self.recovery: list[RecoveryRecord] = []

    def log(self, record: RunRecord) -> None:
        """Add a run."""
        self.records.append(record)

    def log_recovery(self, record: RecoveryRecord) -> None:
        """Add a checkpoint/resume event."""
        self.recovery.append(record)

    def log_telemetry(self, design: str, spans) -> None:
        """Persist per-stage spans (see ``repro.orchestrate``) for a
        design's run alongside its QoR record."""
        for span in spans:
            payload = span.to_dict() if hasattr(span, "to_dict") \
                else dict(span)
            payload.pop("job", None)
            payload.pop("notes", None)
            self.telemetry.append(TelemetryRecord(design=design,
                                                  **payload))

    def stage_profile(self, design: str | None = None) -> dict:
        """Aggregate stage cost: ``{stage: {"calls", "wall_s",
        "cache_hits"}}``, optionally filtered to one design."""
        profile: dict = {}
        for rec in self.telemetry:
            if design is not None and rec.design != design:
                continue
            agg = profile.setdefault(
                rec.stage, {"calls": 0, "wall_s": 0.0,
                            "cache_hits": 0})
            agg["calls"] += 1
            agg["wall_s"] += rec.wall_s
            agg["cache_hits"] += rec.cache == "hit"
        return profile

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def similar_runs(self, features: dict, *, limit: int = 10) -> list:
        """Records nearest to a design fingerprint.

        Distance: normalized L1 over the shared numeric features.
        """
        def distance(rec: RunRecord) -> float:
            d = 0.0
            for key, val in features.items():
                other = rec.features.get(key)
                if other is None:
                    continue
                scale = max(abs(val), abs(other), 1e-9)
                d += abs(val - other) / scale
            return d
        return sorted(self.records, key=distance)[:limit]

    def best_knobs(self, features: dict, metric: str, *,
                   limit: int = 10) -> dict | None:
        """Knobs of the best similar run by ``metric`` (lower wins)."""
        candidates = [
            r for r in self.similar_runs(features, limit=limit)
            if metric in r.qor
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.qor[metric]).knobs

    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist runs, telemetry, and recovery events to JSON."""
        payload = {"runs": [asdict(r) for r in self.records],
                   "telemetry": [asdict(t) for t in self.telemetry],
                   "recovery": [asdict(r) for r in self.recovery]}
        Path(path).write_text(json.dumps(payload, indent=1))

    @staticmethod
    def load(path) -> "RunDatabase":
        """Load from JSON (accepts the legacy runs-only list form)."""
        db = RunDatabase()
        payload = json.loads(Path(path).read_text())
        if isinstance(payload, list):     # pre-telemetry format
            payload = {"runs": payload, "telemetry": []}
        for item in payload.get("runs", []):
            db.log(RunRecord(**item))
        for item in payload.get("telemetry", []):
            db.telemetry.append(TelemetryRecord(**item))
        for item in payload.get("recovery", []):
            db.recovery.append(RecoveryRecord(**item))
        return db
