"""The run database: self-monitoring of implementation runs.

Two persistence surfaces:

* :class:`RunDatabase` — the in-memory store with JSON
  ``save``/``load``, single-writer by construction.
* :class:`RunLog` — an append-only JSONL file safe for *concurrent
  writers* across processes: each process appends whole lines under an
  ``fcntl`` file lock through its own file handle, so a service's
  worker pool can stream telemetry into one shared log without a
  coordinator.  ``RunDatabase.from_log`` folds a log back into a
  queryable database.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.netlist.circuit import Netlist

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


@dataclass
class RunRecord:
    """One logged implementation run."""

    design: str
    features: dict           # design fingerprint (see design_features)
    knobs: dict              # tool settings used
    qor: dict                # measured results (hpwl, overflow, ...)
    tags: list = field(default_factory=list)


@dataclass
class TelemetryRecord:
    """One per-stage telemetry span of an implementation run.

    Mirrors :class:`repro.orchestrate.telemetry.Span` plus the design
    it belongs to, so stage-level cost and cache behaviour persist
    alongside the QoR records they explain.
    """

    design: str
    stage: str
    wall_s: float
    status: str = "ok"
    cache: str | None = None
    retries: int = 0
    peak_rss_kb: int | None = None
    leaked_threads: int = 0


@dataclass
class RecoveryRecord:
    """One journal-resumed run (see
    :func:`repro.orchestrate.resilience.resume_run`).

    ``replayed`` counts stages restored from the write-ahead journal,
    ``executed`` the frontier stages that actually re-ran — the ratio
    is the work a crash did *not* cost, the metric behind the
    checkpoint/resume design.
    """

    run_id: str
    design: str
    replayed: int
    executed: int
    status: str = "resumed"


@dataclass
class ServiceRecord:
    """One job the flow service finished (see :mod:`repro.service`).

    The service appends these to a shared :class:`RunLog` as jobs
    complete; folded back in, they answer utilization questions —
    queue delay vs execution time, cache disposition mix, which
    tenants dominate, how often crash recovery fired.
    """

    job_id: str
    tenant: str
    design: str
    state: str
    worker: int | None = None
    queued_s: float = 0.0
    exec_s: float = 0.0
    cache: str | None = None
    resumed: bool = False
    stolen: bool = False
    error: str | None = None


_RECORD_KINDS = {
    "run": RunRecord,
    "telemetry": TelemetryRecord,
    "recovery": RecoveryRecord,
    "service": ServiceRecord,
}


class RunLog:
    """Append-only JSONL run log safe for concurrent writers.

    Every process opens its *own* handle (handles are per-pid, never
    inherited across ``fork`` — the pid is checked on each append) and
    serializes whole-line appends with an exclusive ``flock``.  POSIX
    ``O_APPEND`` makes each line land atomically at the current end of
    file even across NFS-free local filesystems; the lock additionally
    orders the ``write`` calls so torn interleavings cannot happen.
    Readers need no lock: a line is either complete or not yet there
    (a trailing partial line — possible only on writer death mid-write
    — is skipped by :meth:`entries`).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = None
        self._pid: int | None = None

    def _handle(self):
        if self._fh is None or self._pid != os.getpid():
            # First use in this process (or first after a fork): the
            # inherited handle shares its offset with the parent.
            self._fh = open(self.path, "ab")
            self._pid = os.getpid()
        return self._fh

    def append(self, kind: str, payload: dict) -> None:
        """Append one record; safe from many processes at once."""
        if kind not in _RECORD_KINDS:
            raise ValueError(f"unknown run-log record kind {kind!r}")
        line = json.dumps({"kind": kind, **payload},
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            fh = self._handle()
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(data)
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def entries(self) -> list:
        """Every complete record in the log, in append order."""
        out = []
        try:
            raw = self.path.read_bytes()
        except OSError:
            return out
        for line in raw.split(b"\n"):
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue             # torn trailing line from a crash
            out.append(rec)
        return out

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._pid == os.getpid():
                self._fh.close()
            self._fh = None


def design_features(netlist: Netlist) -> dict:
    """A design fingerprint for similarity lookup.

    Deliberately cheap: instance count, average fanout, sequential
    ratio, area — the features a tool has before placement starts.
    """
    gates = list(netlist.gates.values())
    if not gates:
        return {"instances": 0, "avg_fanout": 0.0, "seq_ratio": 0.0,
                "area_um2": 0.0}
    fanout = netlist.fanout_map()
    loads = [len(v) for v in fanout.values()]
    seq = sum(1 for g in gates if g.cell.is_sequential)
    return {
        "instances": len(gates),
        "avg_fanout": sum(loads) / max(len(loads), 1),
        "seq_ratio": seq / len(gates),
        "area_um2": netlist.area_um2(),
    }


class RunDatabase:
    """Accumulates run records; queryable by design similarity."""

    def __init__(self):
        self.records: list[RunRecord] = []
        self.telemetry: list[TelemetryRecord] = []
        self.recovery: list[RecoveryRecord] = []
        self.service: list[ServiceRecord] = []

    def log(self, record: RunRecord) -> None:
        """Add a run."""
        self.records.append(record)

    def log_recovery(self, record: RecoveryRecord) -> None:
        """Add a checkpoint/resume event."""
        self.recovery.append(record)

    def log_service(self, record: ServiceRecord) -> None:
        """Add a finished service job."""
        self.service.append(record)

    def service_profile(self) -> dict:
        """Utilization summary over service records: per-tenant job
        counts plus aggregate queue/exec time and cache mix."""
        profile: dict = {}
        for rec in self.service:
            agg = profile.setdefault(
                rec.tenant, {"jobs": 0, "queued_s": 0.0,
                             "exec_s": 0.0, "cache_hits": 0,
                             "resumed": 0, "failed": 0})
            agg["jobs"] += 1
            agg["queued_s"] += rec.queued_s
            agg["exec_s"] += rec.exec_s
            agg["cache_hits"] += rec.cache not in (None, "miss")
            agg["resumed"] += bool(rec.resumed)
            agg["failed"] += rec.state == "failed"
        return profile

    def log_telemetry(self, design: str, spans) -> None:
        """Persist per-stage spans (see ``repro.orchestrate``) for a
        design's run alongside its QoR record."""
        for span in spans:
            payload = span.to_dict() if hasattr(span, "to_dict") \
                else dict(span)
            payload.pop("job", None)
            payload.pop("notes", None)
            self.telemetry.append(TelemetryRecord(design=design,
                                                  **payload))

    def stage_profile(self, design: str | None = None) -> dict:
        """Aggregate stage cost: ``{stage: {"calls", "wall_s",
        "cache_hits"}}``, optionally filtered to one design."""
        profile: dict = {}
        for rec in self.telemetry:
            if design is not None and rec.design != design:
                continue
            agg = profile.setdefault(
                rec.stage, {"calls": 0, "wall_s": 0.0,
                            "cache_hits": 0})
            agg["calls"] += 1
            agg["wall_s"] += rec.wall_s
            agg["cache_hits"] += rec.cache == "hit"
        return profile

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def similar_runs(self, features: dict, *, limit: int = 10) -> list:
        """Records nearest to a design fingerprint.

        Distance: normalized L1 over the shared numeric features.
        """
        def distance(rec: RunRecord) -> float:
            d = 0.0
            for key, val in features.items():
                other = rec.features.get(key)
                if other is None:
                    continue
                scale = max(abs(val), abs(other), 1e-9)
                d += abs(val - other) / scale
            return d
        return sorted(self.records, key=distance)[:limit]

    def best_knobs(self, features: dict, metric: str, *,
                   limit: int = 10) -> dict | None:
        """Knobs of the best similar run by ``metric`` (lower wins)."""
        candidates = [
            r for r in self.similar_runs(features, limit=limit)
            if metric in r.qor
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.qor[metric]).knobs

    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist runs, telemetry, and recovery events to JSON."""
        payload = {"runs": [asdict(r) for r in self.records],
                   "telemetry": [asdict(t) for t in self.telemetry],
                   "recovery": [asdict(r) for r in self.recovery],
                   "service": [asdict(r) for r in self.service]}
        Path(path).write_text(json.dumps(payload, indent=1))

    @staticmethod
    def load(path) -> "RunDatabase":
        """Load from JSON (accepts the legacy runs-only list form)."""
        db = RunDatabase()
        payload = json.loads(Path(path).read_text())
        if isinstance(payload, list):     # pre-telemetry format
            payload = {"runs": payload, "telemetry": []}
        for item in payload.get("runs", []):
            db.log(RunRecord(**item))
        for item in payload.get("telemetry", []):
            db.telemetry.append(TelemetryRecord(**item))
        for item in payload.get("recovery", []):
            db.recovery.append(RecoveryRecord(**item))
        for item in payload.get("service", []):
            db.service.append(ServiceRecord(**item))
        return db

    @staticmethod
    def from_log(log: "RunLog | str | Path") -> "RunDatabase":
        """Fold a concurrent-writer :class:`RunLog` into a database.

        Unknown kinds and records with unexpected fields are skipped
        rather than fatal — the log may have been written by a newer
        (or older) schema than this reader.
        """
        if not isinstance(log, RunLog):
            log = RunLog(log)
        db = RunDatabase()
        sinks = {"run": db.records, "telemetry": db.telemetry,
                 "recovery": db.recovery, "service": db.service}
        for entry in log.entries():
            kind = entry.pop("kind", None)
            cls = _RECORD_KINDS.get(kind)
            if cls is None:
                continue
            try:
                sinks[kind].append(cls(**entry))
            except TypeError:        # schema drift: skip, don't die
                continue
        return db
