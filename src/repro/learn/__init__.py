"""The self-learning implementation engine Rossi asks for.

"There is no real self-monitoring of the implementation tools able to
generate information useful to the next runs ... a kind of built-in
self-learning engine having access [to] and greatly exploiting an
exhaustive set of information could better drive for more consistent
results." (E8)

* :mod:`repro.learn.rundb` — the run database: every implementation run
  logs its design features, knob settings, and QoR.
* :mod:`repro.learn.predictor` — ridge-regression QoR predictor trained
  on the run DB.
* :mod:`repro.learn.tuner` — successive-halving knob tuning, warm-
  started from the run DB.
"""

from repro.learn.rundb import (
    RecoveryRecord,
    RunDatabase,
    RunRecord,
    TelemetryRecord,
    design_features,
)
from repro.learn.predictor import QorPredictor
from repro.learn.tuner import KnobSpace, engine_space, tune_knobs

__all__ = [
    "RecoveryRecord",
    "RunDatabase",
    "RunRecord",
    "TelemetryRecord",
    "design_features",
    "QorPredictor",
    "KnobSpace",
    "engine_space",
    "tune_knobs",
]
