"""The full implementation flow: RTL-ish input to routed design.

``implement`` strings every substrate together: logic synthesis (era
recipes), global/detailed placement, optional scan insertion with
layout-aware reordering, global routing with layer assignment, then
timing and power signoff with placement-derived parasitics.

The ``basic``/``advanced`` recipes realize Domic's "do more with less"
comparison (E15): the advanced flow wins on every axis using the same
substrate algorithms with the decade's options enabled.

Since the ``repro.orchestrate`` subsystem landed, this module only
owns the public datatypes (:class:`FlowOptions`, :class:`FlowResult`)
and the thin :func:`implement` wrapper; scheduling, stage timing,
caching, and parallelism live in
:func:`repro.orchestrate.flows.implement_dag`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist


@dataclass
class FlowOptions:
    """Recipe knobs for :func:`implement`.

    The named constructors give the two era recipes; individual knobs
    remain overridable for ablations and tuning (E8).
    """

    era: str = "2016"
    utilization: float = 0.4
    spreading_passes: int = 3
    detailed_passes: int = 2
    routing_engine: str = "maze"
    routing_layers: int = 6
    routing_iterations: int = 4
    gcell_um: float = 2.0
    scan: bool = False
    scan_chains: int = 1
    layout_aware_scan: bool = True
    cts: bool = False
    clock_period_ps: float = 2000.0
    freq_ghz: float = 0.5
    seed: int = 0

    @staticmethod
    def basic() -> "FlowOptions":
        """The 2006-era recipe."""
        return FlowOptions(era="2006", spreading_passes=1,
                           detailed_passes=0, routing_iterations=1,
                           layout_aware_scan=False)

    @staticmethod
    def advanced() -> "FlowOptions":
        """The 2016-era recipe."""
        return FlowOptions()


@dataclass
class FlowResult:
    """Signoff-style QoR of one implementation run."""

    netlist: Netlist
    placement: object
    routing: object
    options: FlowOptions
    instances: int
    area_um2: float
    hpwl_um: float
    routed_wirelength: int
    overflow: int
    delay_ps: float
    power_uw: float
    runtime_s: float
    stage_runtimes: dict = field(default_factory=dict)
    clock_tree: object = None
    status: str = "ok"       # ok | degraded (optional stage failed)

    @property
    def clock_skew_ps(self) -> float:
        """CTS skew, or 0 when the flow ran without CTS."""
        return self.clock_tree.skew_ps if self.clock_tree else 0.0

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"{self.options.era}-flow: {self.instances} cells, "
            f"{self.area_um2:.1f} um2, wl {self.routed_wirelength} "
            f"gcells (ovfl {self.overflow}), {self.delay_ps:.0f} ps, "
            f"{self.power_uw:.1f} uW, {self.runtime_s:.2f} s"
        )


def implement(subject, library: CellLibrary,
              options: FlowOptions | None = None,
              run_db=None) -> FlowResult:
    """Run the full flow on an AIG, logic network, or mapped netlist.

    With ``run_db`` (a :class:`repro.learn.RunDatabase`) the flow
    self-monitors: design features, knobs, QoR, and per-stage
    telemetry spans are logged so later runs can warm-start — Rossi's
    "self-monitoring of the implementation tools able to generate
    information useful to the next runs".

    This is a thin wrapper over the DAG engine; pass a result cache,
    telemetry sink, or ``jobs > 1`` to
    :func:`repro.orchestrate.flows.implement_dag` for the full
    orchestration surface.
    """
    from repro.orchestrate.flows import implement_dag
    return implement_dag(subject, library, options, run_db=run_db)
