"""The full implementation flow: RTL-ish input to routed design.

``implement`` strings every substrate together: logic synthesis (era
recipes), global/detailed placement, optional scan insertion with
layout-aware reordering, global routing with layer assignment, then
timing and power signoff with placement-derived parasitics.

The ``basic``/``advanced`` recipes realize Domic's "do more with less"
comparison (E15): the advanced flow wins on every axis using the same
substrate algorithms with the decade's options enabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.dft.scan import insert_scan, reorder_chain
from repro.netlist.aig import Aig
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist
from repro.place.detailed import detailed_place
from repro.place.global_place import global_place
from repro.power.analysis import power_report
from repro.route.global_route import route_placement
from repro.synthesis.flow import SynthesisFlow
from repro.timing import TimingAnalyzer, WireModel


@dataclass
class FlowOptions:
    """Recipe knobs for :func:`implement`.

    The named constructors give the two era recipes; individual knobs
    remain overridable for ablations and tuning (E8).
    """

    era: str = "2016"
    utilization: float = 0.4
    spreading_passes: int = 3
    detailed_passes: int = 2
    routing_engine: str = "maze"
    routing_layers: int = 6
    routing_iterations: int = 4
    gcell_um: float = 2.0
    scan: bool = False
    scan_chains: int = 1
    layout_aware_scan: bool = True
    cts: bool = False
    clock_period_ps: float = 2000.0
    freq_ghz: float = 0.5
    seed: int = 0

    @staticmethod
    def basic() -> "FlowOptions":
        """The 2006-era recipe."""
        return FlowOptions(era="2006", spreading_passes=1,
                           detailed_passes=0, routing_iterations=1,
                           layout_aware_scan=False)

    @staticmethod
    def advanced() -> "FlowOptions":
        """The 2016-era recipe."""
        return FlowOptions()


@dataclass
class FlowResult:
    """Signoff-style QoR of one implementation run."""

    netlist: Netlist
    placement: object
    routing: object
    options: FlowOptions
    instances: int
    area_um2: float
    hpwl_um: float
    routed_wirelength: int
    overflow: int
    delay_ps: float
    power_uw: float
    runtime_s: float
    stage_runtimes: dict = field(default_factory=dict)
    clock_tree: object = None

    @property
    def clock_skew_ps(self) -> float:
        """CTS skew, or 0 when the flow ran without CTS."""
        return self.clock_tree.skew_ps if self.clock_tree else 0.0

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"{self.options.era}-flow: {self.instances} cells, "
            f"{self.area_um2:.1f} um2, wl {self.routed_wirelength} "
            f"gcells (ovfl {self.overflow}), {self.delay_ps:.0f} ps, "
            f"{self.power_uw:.1f} uW, {self.runtime_s:.2f} s"
        )


def implement(subject, library: CellLibrary,
              options: FlowOptions | None = None,
              run_db=None) -> FlowResult:
    """Run the full flow on an AIG, logic network, or mapped netlist.

    With ``run_db`` (a :class:`repro.learn.RunDatabase`) the flow
    self-monitors: design features, knobs, and QoR are logged so later
    runs can warm-start — Rossi's "self-monitoring of the
    implementation tools able to generate information useful to the
    next runs".
    """
    if options is None:
        options = FlowOptions()
    t_start = time.perf_counter()
    stages: dict[str, float] = {}

    # Synthesis (skipped when handed a mapped netlist).
    t0 = time.perf_counter()
    if isinstance(subject, Netlist):
        netlist = subject
    else:
        flow = SynthesisFlow(library, options.era,
                             options.clock_period_ps)
        netlist = flow.run(subject).netlist
    stages["synthesis"] = time.perf_counter() - t0

    # Placement.
    t0 = time.perf_counter()
    placement = global_place(
        netlist, utilization=options.utilization,
        spreading_passes=options.spreading_passes, seed=options.seed)
    if options.detailed_passes:
        detailed_place(placement, passes=options.detailed_passes,
                       seed=options.seed)
    stages["placement"] = time.perf_counter() - t0

    # Scan insertion (layout-aware order uses the placement).
    t0 = time.perf_counter()
    if options.scan and netlist.sequential_gates():
        flops = [g.name for g in netlist.sequential_gates()]
        order = reorder_chain(flops, placement) \
            if options.layout_aware_scan else None
        insert_scan(netlist, num_chains=options.scan_chains, order=order)
    stages["dft"] = time.perf_counter() - t0

    # Clock-tree synthesis.
    t0 = time.perf_counter()
    clock_tree = None
    if options.cts and netlist.sequential_gates():
        from repro.timing.cts import synthesize_clock_tree
        clock_tree = synthesize_clock_tree(placement)
    stages["cts"] = time.perf_counter() - t0

    # Routing.
    t0 = time.perf_counter()
    routing = route_placement(
        placement, engine=options.routing_engine,
        layers=options.routing_layers, gcell_um=options.gcell_um,
        max_iterations=options.routing_iterations)
    stages["routing"] = time.perf_counter() - t0

    # Signoff with placement-derived wire lengths.
    t0 = time.perf_counter()
    lengths = placement.net_lengths()
    wm = WireModel.for_node(library.node, lengths)
    timing = TimingAnalyzer(netlist, wm, options.clock_period_ps).analyze()
    power = power_report(netlist, freq_ghz=options.freq_ghz, patterns=64,
                         seed=options.seed)
    stages["signoff"] = time.perf_counter() - t0

    result = FlowResult(
        netlist=netlist,
        placement=placement,
        routing=routing,
        options=options,
        instances=netlist.num_instances(),
        area_um2=netlist.area_um2(),
        hpwl_um=placement.total_hpwl(),
        routed_wirelength=routing.wirelength,
        overflow=routing.overflow,
        delay_ps=timing.critical_delay_ps,
        power_uw=power.total_uw,
        runtime_s=time.perf_counter() - t_start,
        stage_runtimes=stages,
        clock_tree=clock_tree,
    )
    if run_db is not None:
        from repro.learn.rundb import RunRecord, design_features
        run_db.log(RunRecord(
            design=netlist.name,
            features=design_features(netlist),
            knobs={
                "era": options.era,
                "utilization": options.utilization,
                "spreading_passes": options.spreading_passes,
                "detailed_passes": options.detailed_passes,
                "routing_iterations": options.routing_iterations,
            },
            qor={
                "hpwl_um": result.hpwl_um,
                "overflow": result.overflow,
                "delay_ps": result.delay_ps,
                "power_uw": result.power_uw,
                "runtime_s": result.runtime_s,
            },
            tags=["flow"],
        ))
    return result
