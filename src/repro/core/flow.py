"""The flow datatypes, plus the deprecated ``implement`` entry point.

This module owns the public datatypes of an implementation run:
:class:`FlowOptions` (recipe knobs), :class:`FlowStatus`, and
:class:`FlowResult` — including the one canonical
:meth:`FlowResult.from_run` conversion from an executor-level
:class:`~repro.orchestrate.executor.RunResult`.

The ``basic``/``advanced`` recipes realize Domic's "do more with less"
comparison (E15): the advanced flow wins on every axis using the same
substrate algorithms with the decade's options enabled.

Since the ``repro.orchestrate`` subsystem became the one documented
flow API (:func:`repro.orchestrate.run` /
:func:`repro.orchestrate.resume_run`), :func:`implement` here is a
deprecation shim kept for source compatibility.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from enum import Enum

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist

#: Version of the FlowOptions/FlowResult wire format.  Bump when a
#: field changes meaning; journals persist it so a resume can refuse
#: records written by an incompatible build.  v4: engine-selection
#: knobs validate against the ``repro.engines`` registry at option
#: construction and ``routing_engine`` defaults to the vectorized
#: ``batched`` engine.  v5: every stage selects through the registry —
#: ``synth_engine``, ``cts_engine``, and ``sizing_engine`` join
#: ``place_engine``/``routing_engine`` (defaults reproduce the v4
#: flow bit-for-bit).
FLOW_SCHEMA_VERSION = 5


class FlowStatus(str, Enum):
    """Terminal status of a flow run.

    A ``str`` mixin keeps every existing ``result.status == "ok"``
    comparison working; ``RESUMED`` means the run completed after
    replaying a journal prefix (its metrics are bit-identical to an
    uninterrupted ``OK`` run).
    """

    OK = "ok"
    DEGRADED = "degraded"      # an optional stage failed
    RESUMED = "resumed"        # completed via journal replay
    FAILED = "failed"          # a required stage failed (strict=False)

    def __str__(self) -> str:
        return self.value


@dataclass
class FlowOptions:
    """Recipe knobs for :func:`implement`.

    The named constructors give the two era recipes; individual knobs
    remain overridable for ablations and tuning (E8).

    The ``*_engine`` fields name engines in the :mod:`repro.engines`
    registry — one per flow stage (``synth_engine``, ``place_engine``,
    ``cts_engine``, ``routing_engine``) plus ``sizing_engine`` for the
    STA-hot sizing loop inside synthesis — and are validated, along
    with the option values their knob schemas constrain, when the
    options object is constructed, so a typo is a ``ValueError`` here
    rather than a surprise mid-flow.  Unpickling (journal/cache
    decode) bypasses the check; execution-time resolution handles
    retired names via the registry's deprecation shims.
    """

    era: str = "2016"
    synth_engine: str = "area"       # registry stage "synthesis"
    sizing_engine: str = "incremental"  # registry stage "sizing"
    utilization: float = 0.4
    place_engine: str = "analytic"   # registry stage "placement"
    spreading_passes: int = 3
    detailed_passes: int = 2
    routing_engine: str = "batched"  # registry stage "routing"
    routing_layers: int = 6
    routing_iterations: int = 4
    gcell_um: float = 2.0
    scan: bool = False
    scan_chains: int = 1
    layout_aware_scan: bool = True
    cts: bool = False
    cts_engine: str = "htree"        # registry stage "cts"
    clock_period_ps: float = 2000.0
    freq_ghz: float = 0.5
    seed: int = 0
    schema_version: int = FLOW_SCHEMA_VERSION

    def __post_init__(self) -> None:
        from repro.engines import validate_options
        validate_options(self)

    @staticmethod
    def basic() -> "FlowOptions":
        """The 2006-era recipe."""
        return FlowOptions(era="2006", spreading_passes=1,
                           detailed_passes=0, routing_iterations=1,
                           layout_aware_scan=False)

    @staticmethod
    def advanced() -> "FlowOptions":
        """The 2016-era recipe."""
        return FlowOptions()


@dataclass
class FlowResult:
    """Signoff-style QoR of one implementation run."""

    netlist: Netlist
    placement: object
    routing: object
    options: FlowOptions
    instances: int
    area_um2: float
    hpwl_um: float
    routed_wirelength: int
    overflow: int
    delay_ps: float
    power_uw: float
    runtime_s: float
    stage_runtimes: dict = field(default_factory=dict)
    clock_tree: object = None
    status: FlowStatus = FlowStatus.OK
    schema_version: int = FLOW_SCHEMA_VERSION
    run_id: str | None = None    # set when the run was journaled
    lint: object = None          # LintReport from the pre-run gate

    @classmethod
    def from_run(cls, run, options: FlowOptions,
                 stage_runtimes: dict | None = None,
                 run_id: str | None = None) -> "FlowResult":
        """The canonical ``RunResult`` → ``FlowResult`` conversion.

        Every flow front-end (``repro.orchestrate.run``, ``resume_run``,
        the ``implement`` shim) assembles its result here, so field
        mapping, status derivation (``resumed`` when journal replays
        contributed, priority failed > degraded > resumed > ok), and
        failed-run defaults cannot drift between entry points.  A
        ``failed`` run (only reachable with ``strict=False``) yields
        NaN metrics rather than raising on missing stage outputs.
        """
        outputs = run.outputs
        placement = outputs.get("dft")
        netlist = placement.netlist if placement is not None else None
        routing = outputs.get("routing")
        signoff = outputs.get("signoff") or {}
        status = FlowStatus(run.status)
        if status is FlowStatus.OK and getattr(run, "replayed", None):
            status = FlowStatus.RESUMED
        nan = math.nan
        return cls(
            netlist=netlist,
            placement=placement,
            routing=routing,
            options=options,
            instances=netlist.num_instances() if netlist else 0,
            area_um2=netlist.area_um2() if netlist else nan,
            hpwl_um=placement.total_hpwl() if placement else nan,
            routed_wirelength=routing.wirelength if routing else 0,
            overflow=routing.overflow if routing else 0,
            delay_ps=signoff.get("delay_ps", nan),
            power_uw=signoff.get("power_uw", nan),
            runtime_s=run.wall_s,
            stage_runtimes=dict(stage_runtimes or {}),
            clock_tree=outputs.get("cts"),
            status=status,
            run_id=run_id,
        )

    @property
    def clock_skew_ps(self) -> float:
        """CTS skew, or 0 when the flow ran without CTS."""
        return self.clock_tree.skew_ps if self.clock_tree else 0.0

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"{self.options.era}-flow: {self.instances} cells, "
            f"{self.area_um2:.1f} um2, wl {self.routed_wirelength} "
            f"gcells (ovfl {self.overflow}), {self.delay_ps:.0f} ps, "
            f"{self.power_uw:.1f} uW, {self.runtime_s:.2f} s"
        )


def implement(subject, library: CellLibrary,
              options: FlowOptions | None = None,
              run_db=None) -> FlowResult:
    """Deprecated: use :func:`repro.orchestrate.run` instead.

    ``repro.orchestrate.run(subject, library, options)`` is the single
    documented flow entry point; it accepts the same arguments plus
    the orchestration surface (result cache, telemetry sink,
    ``jobs > 1``, crash-safe journaling).  This shim forwards there and
    will be removed once nothing imports it.
    """
    warnings.warn(
        "repro.core.flow.implement is deprecated; use "
        "repro.orchestrate.run(subject, library, options)",
        DeprecationWarning, stacklevel=2)
    from repro.orchestrate.resilience import run
    return run(subject, library, options, run_db=run_db)
