"""Flow orchestration and the panel's backwards/forwards analytics.

* :mod:`repro.core.flow` — the full implementation flow: synthesis ->
  placement -> scan -> routing -> power/timing signoff, with basic vs
  advanced recipes ("do more with less", E15).
* :mod:`repro.core.throughput` — P&R throughput calibration and the
  1M-instances/day extrapolation (E7).
* :mod:`repro.core.panel` — the decade retrospective/prospective
  report quantifying the panel's abstract.
* :mod:`repro.core.experiments` — the registry mapping experiment ids
  (E1..E15) to their benchmark entry points.
"""

from repro.core.flow import (
    FlowOptions,
    FlowResult,
    FlowStatus,
    implement,
)
from repro.core.throughput import (
    ThroughputModel,
    calibrate_throughput,
)
from repro.core.panel import decade_report
from repro.core.experiments import EXPERIMENTS, experiment_info
from repro.core.signoff import SignoffReport, signoff, signoff_frequency_ghz

__all__ = [
    "FlowOptions",
    "FlowResult",
    "FlowStatus",
    "implement",
    "ThroughputModel",
    "calibrate_throughput",
    "decade_report",
    "EXPERIMENTS",
    "experiment_info",
    "SignoffReport",
    "signoff",
    "signoff_frequency_ghz",
]
