"""P&R throughput calibration: the 1M-instances/day question (E7).

Rossi: "engineers can today run a place-and-route job for a 5-6M
instance sub-chip with a throughput approaching the 1M instance per
day" thanks to multicore farms.  We measure the runtime of real (small)
placement+routing runs, fit the power-law runtime model, and
extrapolate to production sizes and core counts — the standard way to
reason about tool scaling without the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.cells import CellLibrary
from repro.netlist.generators import logic_cloud
from repro.orchestrate.telemetry import stage_timer
from repro.place.global_place import global_place
from repro.route.global_route import route_placement


@dataclass
class ThroughputModel:
    """Fitted runtime model: t(n) = a * n^b seconds, single thread.

    Parallel speedup follows Amdahl with ``parallel_fraction``
    (placement solves and maze expansions parallelize; netlist I/O and
    legalization do not).
    """

    coefficient: float
    exponent: float
    samples: list = field(default_factory=list)
    parallel_fraction: float = 0.85

    @staticmethod
    def from_anchor(instances: int, days_single_core: float,
                    exponent: float, *,
                    parallel_fraction: float = 0.85) -> "ThroughputModel":
        """Model anchored to a known production data point.

        Python-measured *coefficients* do not transfer to C++ tools,
        but the *exponent* (algorithmic scaling) does; this constructor
        keeps a measured exponent and pins the constant to a known
        anchor such as "a 5M-instance sub-chip takes ~5 single-core
        days" (the regime behind Rossi's 1M-instances/day farms).
        """
        if instances < 1 or days_single_core <= 0:
            raise ValueError("anchor must be positive")
        coeff = days_single_core * 86400.0 / instances ** exponent
        return ThroughputModel(coefficient=coeff, exponent=exponent,
                               parallel_fraction=parallel_fraction)

    def runtime_s(self, instances: int, *, cores: int = 1) -> float:
        """Predicted wall-clock seconds for a run."""
        if instances < 1 or cores < 1:
            raise ValueError("instances and cores must be positive")
        serial = self.coefficient * instances ** self.exponent
        speedup = 1.0 / ((1 - self.parallel_fraction) +
                         self.parallel_fraction / cores)
        return serial / speedup

    def instances_per_day(self, instances: int, *, cores: int = 1) -> float:
        """Throughput at a given block size."""
        t = self.runtime_s(instances, cores=cores)
        return instances * 86400.0 / t

    def cores_for_target(self, instances: int,
                         target_per_day: float) -> int:
        """Smallest core count achieving a throughput target.

        Returns -1 when Amdahl's ceiling makes the target unreachable.
        """
        for cores in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024):
            if self.instances_per_day(instances, cores=cores) >= \
                    target_per_day:
                return cores
        return -1


def calibrate_throughput(library: CellLibrary, *,
                         sizes=(200, 400, 800, 1600),
                         seed: int = 0,
                         parallel_fraction: float = 0.85) -> ThroughputModel:
    """Measure place+route runtime at several sizes and fit the model."""
    timings: dict = {}
    for n in sizes:
        nl = logic_cloud(16, 16, n, library, seed=seed, locality=0.9)
        with stage_timer(timings, n):
            placement = global_place(nl, seed=seed, utilization=0.35)
            route_placement(placement, gcell_um=2.0, max_iterations=2)
    samples = list(timings.items())
    xs = np.log([s[0] for s in samples])
    ys = np.log([max(s[1], 1e-4) for s in samples])
    exponent, log_coeff = np.polyfit(xs, ys, 1)
    return ThroughputModel(
        coefficient=float(np.exp(log_coeff)),
        exponent=float(exponent),
        samples=samples,
        parallel_fraction=parallel_fraction,
    )
