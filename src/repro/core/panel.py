"""The decade report: the panel's abstract, quantified.

"Ten years ago, at 90 nanometers, EDA was challenged ...  Today, at 10
nanometers, integration capacity has increased by two orders of
magnitude, power consumption has been successfully 'tamed', and 193
nanometer immersion lithography is still relied upon."

:func:`decade_report` derives each abstract claim from the library's
models and returns them with pass/fail against the quoted numbers —
the closest thing this paper has to a results table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.market.design_starts import DesignStartModel
from repro.power.dark import dark_silicon_fraction
from repro.tech.library import get_node
from repro.tech.patterning import SINGLE_PATTERN_PITCH_NM, colors_required
from repro.tech.scaling import integration_capacity_ratio


@dataclass
class Claim:
    """One quantified panel claim and its model-derived value."""

    claim_id: str
    statement: str
    expected: str
    measured: float
    holds: bool

    def row(self) -> str:
        """Markdown table row."""
        status = "holds" if self.holds else "MISS"
        return (f"| {self.claim_id} | {self.statement} | {self.expected} "
                f"| {self.measured:.3g} | {status} |")


@dataclass
class DecadeReport:
    """All abstract-level claims with their measurements."""

    claims: list = field(default_factory=list)

    def all_hold(self) -> bool:
        return all(c.holds for c in self.claims)

    def to_markdown(self) -> str:
        """Full markdown table."""
        lines = [
            "| id | claim | expected | measured | status |",
            "|----|-------|----------|----------|--------|",
        ]
        lines += [c.row() for c in self.claims]
        return "\n".join(lines)


def decade_report() -> DecadeReport:
    """Evaluate the abstract's claims against the models."""
    report = DecadeReport()

    capacity = integration_capacity_ratio("90nm", "10nm")
    report.claims.append(Claim(
        "A1",
        "integration capacity +2 orders of magnitude (90nm -> 10nm)",
        "60..150x", capacity, 60 <= capacity <= 150))

    # Power "tamed": the technique catalogue multiplies the lit
    # (simultaneously powered) fraction of a 10 nm die several-fold.
    raw_lit = 1.0 - dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                          activity=0.25)
    tamed_lit = 1.0 - dark_silicon_fraction("10nm", tdp_w_per_mm2=0.15,
                                            activity=0.25,
                                            power_technique_factor=0.2)
    lit_gain = tamed_lit / max(raw_lit, 1e-9)
    report.claims.append(Claim(
        "A2", "power successfully tamed (techniques recover lit area)",
        ">= 3x lit-area gain", lit_gain, lit_gain >= 3.0))

    # 193i still relied upon: 10 nm M1 pitch is printable with
    # multi-patterning at 193 nm (no EUV in the node table).
    colors_10 = colors_required(get_node("10nm").metal1_pitch_nm)
    report.claims.append(Claim(
        "A3", "193i + multi-patterning still carries 10nm",
        "2..4 masks", colors_10, 2 <= colors_10 <= 4))

    report.claims.append(Claim(
        "A4", "single-patterning pitch limit",
        "~80 nm", SINGLE_PATTERN_PITCH_NM,
        75 <= SINGLE_PATTERN_PITCH_NM <= 85))

    # Design-start structure (E11 anchors).
    model = DesignStartModel()
    est = model.established_share()
    report.claims.append(Claim(
        "A5", ">90% of design starts at 32/28nm and above",
        ">= 0.90", est, est >= 0.90))
    s180 = model.share_of("180nm")
    report.claims.append(Claim(
        "A6", "180nm is the most-designed node, >25% of starts",
        ">= 0.25", s180,
        s180 >= 0.25 and model.most_designed_node() == "180nm"))

    # "Won't change significantly over the next decade."
    model10 = DesignStartModel()
    model10.forecast(10)
    est10 = model10.established_share()
    report.claims.append(Claim(
        "A7", "established share still dominant after a decade",
        ">= 0.80", est10, est10 >= 0.80))
    return report
