"""Multi-corner signoff: timing and power across PVT corners.

Domic's "consistently verified throughout the design flow" extended to
the physical axes: the same netlist is checked at slow/typical/fast
process corners and at the junction temperatures the thermal solver
predicts, with the derating factors of
:func:`repro.power.thermal.derate_for_temperature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Netlist
from repro.power.analysis import power_report
from repro.power.thermal import derate_for_temperature
from repro.timing import IncrementalTimingAnalyzer, WireModel

#: Process-corner delay multipliers (slow/typical/fast silicon).
PROCESS_CORNERS = {"ss": 1.15, "tt": 1.00, "ff": 0.88}


@dataclass
class CornerResult:
    """One corner's checks."""

    corner: str
    temp_c: float
    delay_ps: float
    wns_ps: float
    leakage_uw: float

    @property
    def timing_clean(self) -> bool:
        return self.wns_ps >= 0


@dataclass
class SignoffReport:
    """All corners plus the overall verdict."""

    corners: list = field(default_factory=list)
    clock_period_ps: float = 0.0

    @property
    def clean(self) -> bool:
        return all(c.timing_clean for c in self.corners)

    def worst_corner(self) -> CornerResult:
        return min(self.corners, key=lambda c: c.wns_ps)

    def leakage_range_uw(self) -> tuple:
        vals = [c.leakage_uw for c in self.corners]
        return (min(vals), max(vals))

    def to_rows(self) -> list:
        """Human-readable corner rows."""
        return [
            f"{c.corner}@{c.temp_c:.0f}C: delay {c.delay_ps:.0f} ps, "
            f"wns {c.wns_ps:+.0f} ps, leak {c.leakage_uw:.2f} uW "
            f"({'clean' if c.timing_clean else 'VIOLATED'})"
            for c in self.corners
        ]


def signoff(netlist: Netlist, *, clock_period_ps: float,
            wire_model: WireModel | None = None,
            temps_c=(0.0, 25.0, 125.0),
            corners=("ss", "tt", "ff")) -> SignoffReport:
    """Check timing and leakage at every (process, temperature) corner.

    Setup timing is checked at the slow corner's derated delays;
    leakage is reported per corner (it explodes at temperature, which
    is what makes the ADAS thermal envelope expensive).
    """
    node = netlist.library.node
    wm = wire_model or WireModel.for_node(node)
    with IncrementalTimingAnalyzer(netlist, wm, clock_period_ps) as sta:
        base = sta.analyze()
    base_delay = base.critical_delay_ps
    base_leak_uw = netlist.leakage_nw() * 1e-3
    report = SignoffReport(clock_period_ps=clock_period_ps)
    for corner in corners:
        if corner not in PROCESS_CORNERS:
            raise ValueError(f"unknown corner {corner!r}")
        pfactor = PROCESS_CORNERS[corner]
        for temp in temps_c:
            derate = derate_for_temperature(node, temp)
            delay = base_delay * pfactor * derate["delay_factor"]
            report.corners.append(CornerResult(
                corner=corner,
                temp_c=temp,
                delay_ps=delay,
                wns_ps=clock_period_ps - delay,
                leakage_uw=base_leak_uw * derate["leakage_factor"],
            ))
    return report


def signoff_frequency_ghz(netlist: Netlist, *,
                          wire_model: WireModel | None = None,
                          temps_c=(0.0, 25.0, 125.0)) -> float:
    """Highest clock that is clean at every corner."""
    probe = signoff(netlist, clock_period_ps=1e9,
                    wire_model=wire_model, temps_c=temps_c)
    worst = max(c.delay_ps for c in probe.corners)
    return 1000.0 / worst if worst > 0 else float("inf")
