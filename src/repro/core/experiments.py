"""The experiment registry: every panel claim and where it lives."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproduced claim."""

    exp_id: str
    speaker: str
    claim: str
    modules: tuple
    bench: str


EXPERIMENTS: dict = {
    e.exp_id: e for e in [
        Experiment(
            "E1", "Domic",
            "RTL synthesis improved ~30% in area (and performance and "
            "power) over the decade",
            ("synthesis", "timing", "power"),
            "benchmarks/bench_e01_synthesis_decade.py"),
        Experiment(
            "E2", "Domic",
            "Flat implementation saves area and power via less buffering",
            ("netlist.hierarchy", "place"),
            "benchmarks/bench_e02_flat_vs_hier.py"),
        Experiment(
            "E3", "Domic",
            "20nm routing impossible without 2/3/4-patterning; 5nm "
            "without EUV could need octuple",
            ("litho.mpd", "route", "tech"),
            "benchmarks/bench_e03_multipatterning.py"),
        Experiment(
            "E4", "Domic",
            "Line-search routers reduce layers at >=28nm; 6->4 layers "
            "cuts 15-20% of cost",
            ("route", "mfg"),
            "benchmarks/bench_e04_layer_reduction.py"),
        Experiment(
            "E5", "Domic",
            "Voltage scaling from 130nm; power techniques mandatory at "
            "90/65nm; scores of domains at 180nm; dark silicon prevented",
            ("power", "tech"),
            "benchmarks/bench_e05_power_techniques.py"),
        Experiment(
            "E6", "Macii",
            "Smart-system co-design beats separate tools on cost and TTM",
            ("smartsys",),
            "benchmarks/bench_e06_smartsys_codesign.py"),
        Experiment(
            "E7", "Rossi",
            "P&R throughput ~1M instances/day on 5-6M instance sub-chips",
            ("core.throughput", "place", "route"),
            "benchmarks/bench_e07_pnr_throughput.py"),
        Experiment(
            "E8", "Rossi",
            "A built-in self-learning engine gives more consistent results",
            ("learn", "core.flow"),
            "benchmarks/bench_e08_self_learning.py"),
        Experiment(
            "E9", "Rossi",
            "Networking ASICs at 5X activity need automatic hot-spot "
            "removal and decap insertion",
            ("power.grid", "place"),
            "benchmarks/bench_e09_hotspot_decap.py"),
        Experiment(
            "E10", "Rossi",
            "Scan reordering during implementation relieves congestion; "
            "DFT can no longer be a front-end-only activity",
            ("dft", "place"),
            "benchmarks/bench_e10_dft_reorder.py"),
        Experiment(
            "E11", "Domic/Sawicki",
            ">90% of starts at 32/28nm+; 180nm >25%; stable for a decade",
            ("market",),
            "benchmarks/bench_e11_design_starts.py"),
        Experiment(
            "E12", "Rossi/Sawicki",
            "Computational lithography enables scaling without EUV",
            ("litho",),
            "benchmarks/bench_e12_comp_litho.py"),
        Experiment(
            "E13", "Sawicki",
            "Advanced-node techniques retarget to established nodes for "
            "IoT (low power, low-pin-count test, node variants)",
            ("power", "dft.compression", "mfg", "market"),
            "benchmarks/bench_e13_iot_retarget.py"),
        Experiment(
            "E16", "De Micheli",
            "Functionality-enhanced devices (SiNW/CNT controlled-"
            "polarity) need new logic abstractions: majority-based "
            "synthesis beats NAND/NOR thinking on carry-dominated logic",
            ("synthesis.mig",),
            "benchmarks/bench_e16_new_logic_abstractions.py"),
        Experiment(
            "E17", "Rossi",
            "Analog IP (SERDES, ADC/DAC, TCAM) porting time defines "
            "when a node becomes usable for networking ASICs; design "
            "productivity is the fix",
            ("analog",),
            "benchmarks/bench_e17_analog_readiness.py"),
        Experiment(
            "E15", "Domic",
            "Do more with less: advanced flow beats basic flow at both "
            "emerging and established nodes",
            ("core.flow",),
            "benchmarks/bench_e15_do_more_with_less.py"),
    ]
}


def experiment_info(exp_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"E3"``)."""
    try:
        return EXPERIMENTS[exp_id.upper()]
    except KeyError:
        valid = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; valid: {valid}") \
            from None
