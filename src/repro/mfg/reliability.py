"""Reliability: FIT rates, temperature acceleration, and zero-PPM.

Rossi: ADAS is "asking for the adoption of advanced CMOS technology at
a pace the Automotive market never witnessed, but compliant with zero
PPM quality standards even when the ICs is asked to work in tough
temperature conditions."  This module quantifies that tension: the
Arrhenius-accelerated failure rate of a die across temperature, the
shipped-defect PPM after test/burn-in screening, and what screening
effort a zero-PPM (sub-1-PPM) target costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

BOLTZMANN_EV = 8.617e-5


def arrhenius_acceleration(temp_c: float, ref_c: float = 55.0, *,
                           activation_ev: float = 0.7) -> float:
    """Failure-rate acceleration factor at ``temp_c`` vs ``ref_c``."""
    t1 = ref_c + 273.15
    t2 = temp_c + 273.15
    if t2 <= 0 or t1 <= 0:
        raise ValueError("temperatures below absolute zero")
    return math.exp(activation_ev / BOLTZMANN_EV * (1 / t1 - 1 / t2))


def fit_rate(node, die_area_mm2: float, *, temp_c: float = 55.0,
             base_fit_per_mm2: float = 0.05) -> float:
    """Failures per billion device-hours for a die.

    Intrinsic FIT scales with area and with node immaturity (newer
    nodes carry more marginalities), accelerated by temperature.
    """
    if die_area_mm2 <= 0:
        raise ValueError("area must be positive")
    maturity = max(node.defect_density_per_cm2 / 0.25, 0.5)
    base = base_fit_per_mm2 * die_area_mm2 * maturity
    return base * arrhenius_acceleration(temp_c)


@dataclass
class ScreeningPlan:
    """A production test + burn-in screen."""

    test_coverage: float          # fraction of defects caught at test
    burn_in_hours: float = 0.0
    burn_in_temp_c: float = 125.0

    def __post_init__(self) -> None:
        if not 0 <= self.test_coverage <= 1:
            raise ValueError("coverage in [0, 1]")
        if self.burn_in_hours < 0:
            raise ValueError("burn-in hours must be non-negative")

    def latent_escape_fraction(self, *,
                               latent_weibull_beta: float = 0.5,
                               latent_life_hours: float = 500.0) -> float:
        """Fraction of latent (infant-mortality) defects that survive
        the burn-in and escape to the field.

        Early-life failures follow a decreasing-hazard Weibull; burn-in
        at elevated temperature consumes equivalent field hours given
        by the Arrhenius acceleration.
        """
        if self.burn_in_hours == 0:
            return 1.0
        accel = arrhenius_acceleration(self.burn_in_temp_c)
        equivalent = self.burn_in_hours * accel
        return math.exp(
            -(equivalent / latent_life_hours) ** latent_weibull_beta)


def shipped_ppm(node, die_area_mm2: float, plan: ScreeningPlan, *,
                latent_defect_ppm: float = 200.0) -> float:
    """Defective parts per million reaching customers.

    Two populations: test escapes (1 - coverage of the latent defect
    PPM present after yield screening) and burn-in survivors among the
    infant-mortality population.
    """
    maturity = max(node.defect_density_per_cm2 / 0.25, 0.5)
    latent = latent_defect_ppm * maturity * (die_area_mm2 / 50.0)
    test_escapes = latent * (1.0 - plan.test_coverage)
    infant = latent * 0.5 * plan.latent_escape_fraction()
    return test_escapes + infant


def screen_for_target_ppm(node, die_area_mm2: float, *,
                          target_ppm: float = 1.0,
                          coverage: float = 0.99,
                          max_burn_in_hours: float = 96.0):
    """Smallest burn-in meeting a PPM target at a given test coverage.

    Returns the :class:`ScreeningPlan`, or ``None`` when even the
    maximum burn-in cannot reach the target (the coverage itself is
    the binding constraint — buy a better DFT methodology instead).
    """
    if target_ppm <= 0:
        raise ValueError("target must be positive")
    for hours in (0, 4, 8, 16, 24, 48, 96):
        if hours > max_burn_in_hours:
            break
        plan = ScreeningPlan(coverage, burn_in_hours=hours)
        if shipped_ppm(node, die_area_mm2, plan) <= target_ppm:
            return plan
    return None


def automotive_mission_failures(node, die_area_mm2: float, *,
                                years: float = 15.0,
                                temp_c: float = 105.0,
                                fleet: int = 1_000_000) -> float:
    """Expected in-field failures across a vehicle fleet's lifetime."""
    if years <= 0 or fleet <= 0:
        raise ValueError("mission parameters must be positive")
    hours = years * 8766.0
    fits = fit_rate(node, die_area_mm2, temp_c=temp_c)
    per_device = fits * hours * 1e-9
    return per_device * fleet
