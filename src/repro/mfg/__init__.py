"""Manufacturing economics: yield, wafer/die/mask cost, NRE.

The quantitative backbone of E4 (layer-count cost), E11/E13 (IoT on
established nodes), and the "innovation death spiral" Rossi warns of:
R&D cost and product complexity rising faster than the market a node
can amortize them over.
"""

from repro.mfg.yield_model import (
    murphy_yield,
    negative_binomial_yield,
    poisson_yield,
)
from repro.mfg.cost import (
    DieCostBreakdown,
    die_cost,
    dies_per_wafer,
    layer_cost_model,
    mask_set_cost,
    wafer_cost,
)
from repro.mfg.nre import (
    NreModel,
    death_spiral_index,
    design_cost,
)
from repro.mfg.reliability import (
    ScreeningPlan,
    arrhenius_acceleration,
    fit_rate,
    screen_for_target_ppm,
    shipped_ppm,
)

__all__ = [
    "poisson_yield",
    "murphy_yield",
    "negative_binomial_yield",
    "dies_per_wafer",
    "wafer_cost",
    "mask_set_cost",
    "die_cost",
    "DieCostBreakdown",
    "layer_cost_model",
    "NreModel",
    "design_cost",
    "death_spiral_index",
    "arrhenius_acceleration",
    "fit_rate",
    "ScreeningPlan",
    "shipped_ppm",
    "screen_for_target_ppm",
]
