"""Non-recurring engineering cost and the "innovation death spiral".

Rossi: "the R&D costs and the complexity of the products to be
developed are both [rising] dramatically. One way not to be trapped in
the so called 'innovation death spiral' ... relies on the timely
availability of 'robust since the early adoption' EDA ecosystems ...
'design efficiency' is indeed the only possible, technological and
financial solution applicable in most of other cases."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.node import TechNode


@dataclass
class NreModel:
    """Design NRE at a node.

    ``design_efficiency`` scales engineering effort: 1.0 is the
    brute-force baseline; advanced EDA flows push it below 1.
    """

    engineer_cost_per_year: float = 250_000.0
    design_efficiency: float = 1.0

    def engineering_years(self, node: TechNode,
                          gates_millions: float) -> float:
        """Engineer-years to complete a design.

        Effort grows with design size (sub-linearly: reuse) and with
        node complexity (rule count, signoff corners).
        """
        if gates_millions <= 0:
            raise ValueError("design size must be positive")
        node_factor = (90.0 / node.drawn_nm) ** 0.9 + 0.5
        base = 4.0 * gates_millions ** 0.6 * node_factor
        return base * self.design_efficiency

    def total_nre(self, node: TechNode, gates_millions: float, *,
                  mask_sets: int = 2) -> float:
        """NRE: engineering plus mask/respin budget."""
        eng = self.engineering_years(node, gates_millions)
        return (eng * self.engineer_cost_per_year +
                mask_sets * node.mask_set_cost_usd)


def design_cost(node: TechNode, gates_millions: float, *,
                design_efficiency: float = 1.0,
                mask_sets: int = 2) -> float:
    """One-call NRE estimate in USD."""
    model = NreModel(design_efficiency=design_efficiency)
    return model.total_nre(node, gates_millions, mask_sets=mask_sets)


def death_spiral_index(node: TechNode, gates_millions: float, *,
                       unit_volume: int, unit_margin_usd: float,
                       design_efficiency: float = 1.0) -> float:
    """NRE as a multiple of the product's lifetime gross margin.

    Above 1.0 the project destroys value — the death spiral: each node
    multiplies NRE, and only "very high volume applications (Wireless
    and high end CPUs)" can pay it back with brute force.  Better
    design efficiency pushes the index back under 1 for everyone else.
    """
    if unit_volume < 1 or unit_margin_usd <= 0:
        raise ValueError("volume and margin must be positive")
    nre = design_cost(node, gates_millions,
                      design_efficiency=design_efficiency)
    return nre / (unit_volume * unit_margin_usd)
