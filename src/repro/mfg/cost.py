"""Wafer, mask, and die cost models.

The E4/E14 anchor (Domic): "moving from a 6-layer 130 nanometers A&M/S
process variant to a 4-layer slashes 15-20% from the cost."  The layer
cost model reproduces that: each metal layer carries deposition, litho,
etch, and CMP steps, so removing two of six layers removes a double-
digit share of the wafer's processed cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mfg.yield_model import murphy_yield, systematic_limited_yield
from repro.tech.node import TechNode
from repro.tech.patterning import mask_layer_cost_multiplier


def dies_per_wafer(die_area_mm2: float, *, wafer_mm: float = 300.0,
                   edge_exclusion_mm: float = 3.0) -> int:
    """Gross dies per wafer with the classic edge-loss correction."""
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    r = wafer_mm / 2.0 - edge_exclusion_mm
    side = math.sqrt(die_area_mm2)
    gross = (math.pi * r * r / die_area_mm2
             - math.pi * 2 * r / (side * math.sqrt(2.0)))
    return max(0, int(gross))


def wafer_cost(node: TechNode, *, metal_layers: int | None = None) -> float:
    """Processed wafer cost broken into FEOL and per-layer BEOL.

    The node's book cost corresponds to its typical stack; varying
    ``metal_layers`` moves the BEOL share proportionally, with critical
    (multi-patterned) layers weighted by their mask multiplier.
    """
    typical = node.metal_layers_typical
    if metal_layers is None:
        metal_layers = typical
    if metal_layers < 1:
        raise ValueError("need at least one metal layer")
    # BEOL is ~50% of a mature logic wafer's cost at the typical
    # stack depth (interconnect dominates processed-wafer step count).
    beol_share = 0.50
    feol = node.wafer_cost_usd * (1 - beol_share)
    # Critical layers (the first two) use the node's patterning regime;
    # upper layers are relaxed single-pattern.
    crit_mult = mask_layer_cost_multiplier(node.litho)
    def stack_units(layers: int) -> float:
        crit = min(layers, 2)
        return crit * crit_mult + max(0, layers - 2) * 1.0
    per_unit = node.wafer_cost_usd * beol_share / stack_units(typical)
    return feol + per_unit * stack_units(metal_layers)


def mask_set_cost(node: TechNode, *, metal_layers: int | None = None) -> float:
    """Mask-set cost scaled by stack depth and patterning multiplier."""
    typical = node.metal_layers_typical
    if metal_layers is None:
        metal_layers = typical
    crit_mult = node.litho.mask_multiplier
    def masks(layers: int) -> float:
        crit = min(layers, 2)
        base_masks = 18  # FEOL + via + pad layers
        return base_masks + crit * crit_mult + max(0, layers - 2)
    return node.mask_set_cost_usd * masks(metal_layers) / masks(typical)


@dataclass
class DieCostBreakdown:
    """Per-die cost decomposition."""

    die_area_mm2: float
    gross_dies: int
    yield_fraction: float
    wafer_cost_usd: float
    die_cost_usd: float
    amortized_mask_usd: float

    @property
    def total_usd(self) -> float:
        return self.die_cost_usd + self.amortized_mask_usd

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.die_area_mm2:.1f} mm2, {self.gross_dies} gross, "
            f"Y={self.yield_fraction:.2f}, "
            f"${self.total_usd:.3f}/die "
            f"(silicon ${self.die_cost_usd:.3f} + mask "
            f"${self.amortized_mask_usd:.3f})"
        )


def die_cost(node: TechNode, die_area_mm2: float, *,
             metal_layers: int | None = None,
             volume: int = 1_000_000,
             d0_override: float | None = None) -> DieCostBreakdown:
    """Full per-die cost at a node, stack depth, and volume."""
    if volume < 1:
        raise ValueError("volume must be positive")
    d0 = node.defect_density_per_cm2 if d0_override is None else d0_override
    gross = dies_per_wafer(die_area_mm2)
    if gross == 0:
        raise ValueError("die larger than the wafer")
    if metal_layers is None:
        metal_layers = node.metal_layers_typical
    y = systematic_limited_yield(
        murphy_yield(die_area_mm2, d0),
        metal_layers * node.litho.mask_multiplier
        if metal_layers <= 2 else
        2 * node.litho.mask_multiplier + (metal_layers - 2))
    wcost = wafer_cost(node, metal_layers=metal_layers)
    per_die = wcost / (gross * y)
    masks = mask_set_cost(node, metal_layers=metal_layers)
    return DieCostBreakdown(
        die_area_mm2=die_area_mm2,
        gross_dies=gross,
        yield_fraction=y,
        wafer_cost_usd=wcost,
        die_cost_usd=per_die,
        amortized_mask_usd=masks / volume,
    )


def layer_cost_model(node: TechNode, die_area_mm2: float,
                     layer_options: list, *,
                     volume: int = 1_000_000) -> dict:
    """Die cost across candidate metal stack depths.

    Returns layers -> DieCostBreakdown; the E4 harness uses it to
    quantify the 6-to-4-layer saving.
    """
    return {
        layers: die_cost(node, die_area_mm2, metal_layers=layers,
                         volume=volume)
        for layers in layer_options
    }
