"""Random-defect yield models."""

from __future__ import annotations

import math


def _check(area_mm2: float, d0_per_cm2: float) -> float:
    if area_mm2 < 0 or d0_per_cm2 < 0:
        raise ValueError("area and defect density must be non-negative")
    return area_mm2 / 100.0 * d0_per_cm2  # defects per die


def poisson_yield(area_mm2: float, d0_per_cm2: float) -> float:
    """Poisson model: Y = exp(-A*D0).  Pessimistic for large dies."""
    return math.exp(-_check(area_mm2, d0_per_cm2))


def murphy_yield(area_mm2: float, d0_per_cm2: float) -> float:
    """Murphy's model: Y = ((1 - e^-AD) / AD)^2.  The industry default."""
    ad = _check(area_mm2, d0_per_cm2)
    if ad == 0:
        return 1.0
    return ((1.0 - math.exp(-ad)) / ad) ** 2


def negative_binomial_yield(area_mm2: float, d0_per_cm2: float,
                            alpha: float = 2.0) -> float:
    """Negative-binomial model with clustering parameter ``alpha``."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    ad = _check(area_mm2, d0_per_cm2)
    return (1.0 + ad / alpha) ** (-alpha)


def systematic_limited_yield(base: float, layers_at_risk: int,
                             per_layer_loss: float = 0.005) -> float:
    """Multiply in per-layer systematic/litho yield loss.

    Each critical (multi-patterned) mask step carries an overlay and
    stitch-failure risk; deeper decompositions lose more — the yield
    half of the E4/E3 cost trade.
    """
    if not 0 <= base <= 1:
        raise ValueError("base yield must be in [0, 1]")
    if layers_at_risk < 0 or per_layer_loss < 0:
        raise ValueError("bad loss parameters")
    return base * (1.0 - per_layer_loss) ** layers_at_risk
