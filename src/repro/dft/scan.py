"""Scan insertion and chain ordering.

``insert_scan`` swaps every flop for its scan variant and stitches
chains; the chain *order* is the E10 subject: the front-end order
(netlist creation order, what a "DFT as a front end activity" flow
produces) versus the layout-aware order computed after placement
(nearest-neighbor + 2-opt over cell positions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.circuit import Netlist


@dataclass
class ScanChain:
    """One stitched scan chain: ordered flop gate names."""

    name: str
    flops: list
    scan_in: str
    scan_out: str

    def __len__(self) -> int:
        return len(self.flops)


def insert_scan(netlist: Netlist, *, num_chains: int = 1,
                order: list | None = None) -> list:
    """Replace flops with scan flops and stitch chains.

    ``order`` fixes the stitching order (gate names); default is the
    netlist (front-end) order.  Chains are balanced round-robin blocks
    of the order.  Adds global ``scan_en`` and per-chain ``scan_in``
    ports.  Returns the list of :class:`ScanChain`.
    """
    flops = [g for g in netlist.gates.values() if g.cell.is_sequential]
    if not flops:
        raise ValueError("design has no flops to scan")
    if num_chains < 1 or num_chains > len(flops):
        raise ValueError("bad chain count")
    sdff = netlist.library.flop(scan=True)
    by_name = {g.name: g for g in flops}
    if order is None:
        order = [g.name for g in flops]
    if set(order) != set(by_name):
        raise ValueError("order must cover exactly the flops")

    if "scan_en" not in netlist.primary_inputs:
        se = netlist.add_input("scan_en")
    else:
        se = "scan_en"
    chains = []
    chunk = (len(order) + num_chains - 1) // num_chains
    for c in range(num_chains):
        names = order[c * chunk: (c + 1) * chunk]
        if not names:
            continue
        si = netlist.add_input(f"scan_in{c}")
        prev = si
        for name in names:
            gate = by_name[name]
            cell = sdff if not gate.cell.is_scan else gate.cell
            netlist.replace_cell(name, cell,
                                 extra_pins={"SI": prev, "SE": se})
            prev = gate.output
        netlist.add_output(prev)
        chains.append(ScanChain(f"chain{c}", names, si, prev))
    return chains


def chain_wirelength(chain: ScanChain, placement) -> float:
    """Manhattan length of the chain's SI hops, in um."""
    total = 0.0
    prev = None
    for name in chain.flops:
        xy = placement.positions[name]
        if prev is not None:
            total += abs(xy[0] - prev[0]) + abs(xy[1] - prev[1])
        prev = xy
    return total


def reorder_chain(flop_names: list, placement, *, two_opt: bool = True,
                  max_two_opt_passes: int = 8) -> list:
    """Layout-aware stitching order: nearest-neighbor plus 2-opt.

    The tour starts at the flop nearest the die origin (where the scan
    pad sits) and greedily hops to the nearest unvisited flop; 2-opt
    then uncrosses the tour.  Returns the new order.
    """
    if not flop_names:
        return []
    pos = {n: placement.positions[n] for n in flop_names}

    def dist(a, b):
        pa, pb = pos[a], pos[b]
        return abs(pa[0] - pb[0]) + abs(pa[1] - pb[1])

    start = min(flop_names, key=lambda n: pos[n][0] + pos[n][1])
    tour = [start]
    rest = set(flop_names) - {start}
    while rest:
        nxt = min(rest, key=lambda n: dist(tour[-1], n))
        tour.append(nxt)
        rest.remove(nxt)

    if two_opt and len(tour) > 3:
        for _ in range(max_two_opt_passes):
            improved = False
            for i in range(len(tour) - 2):
                for j in range(i + 2, len(tour) - 1):
                    a, b = tour[i], tour[i + 1]
                    c, d = tour[j], tour[j + 1]
                    if dist(a, c) + dist(b, d) < \
                            dist(a, b) + dist(c, d) - 1e-12:
                        tour[i + 1: j + 1] = reversed(tour[i + 1: j + 1])
                        improved = True
            if not improved:
                break
    return tour


def scan_routing_demand(chain: ScanChain, placement, bins: int = 16):
    """RUDY-style congestion contribution of the chain's SI nets.

    Returns a (bins, bins) demand map; used by E10 to show layout-aware
    reordering relieving congestion.
    """
    grid = np.zeros((bins, bins))
    bx = placement.die_w_um / bins
    by = placement.die_h_um / bins
    prev = None
    for name in chain.flops:
        xy = placement.positions[name]
        if prev is not None:
            x0, x1 = sorted((prev[0], xy[0]))
            y0, y1 = sorted((prev[1], xy[1]))
            w = max(x1 - x0, bx * 0.5)
            h = max(y1 - y0, by * 0.5)
            demand = (w + h) / (w * h)
            ix0 = int(np.clip(x0 / bx, 0, bins - 1))
            ix1 = int(np.clip(x1 / bx, ix0, bins - 1))
            iy0 = int(np.clip(y0 / by, 0, bins - 1))
            iy1 = int(np.clip(y1 / by, iy0, bins - 1))
            grid[iy0:iy1 + 1, ix0:ix1 + 1] += demand
        prev = xy
    return grid
