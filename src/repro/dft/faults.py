"""Stuck-at faults and bit-parallel fault simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.circuit import Netlist, _eval_cell


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a net."""

    net: str
    stuck_at: int          # 0 or 1

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError("stuck_at must be 0 or 1")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.net}/sa{self.stuck_at}"


def enumerate_faults(netlist: Netlist) -> list:
    """Collapsed stuck-at fault list: both polarities on every net.

    (Output-equivalence collapsing only: faults live on driven nets,
    covering the classic gate-output model plus primary inputs.)
    """
    out = []
    for net in netlist.nets():
        out.append(Fault(net, 0))
        out.append(Fault(net, 1))
    return out


def _simulate_with_fault(netlist: Netlist, vec: np.ndarray,
                         state: np.ndarray, fault: Fault | None):
    """Full-observability simulation; returns PO + flop-D response."""
    npat = vec.shape[0]
    values: dict[str, np.ndarray] = {}
    forced = fault.net if fault is not None else None

    def assign(net: str, col: np.ndarray) -> None:
        if net == forced:
            col = np.full(npat, bool(fault.stuck_at))
        values[net] = col

    for i, net in enumerate(netlist.primary_inputs):
        assign(net, vec[:, i])
    flops = netlist.sequential_gates()
    for q, g in zip(state.T, flops):
        assign(g.output, q)
    for g in netlist.topological_gates():
        ins = [values[g.pins[p]] for p in g.cell.inputs]
        assign(g.output, _eval_cell(g.cell, ins, npat))
    cols = [values[po] for po in netlist.primary_outputs]
    cols += [values[g.pins["D"]] for g in flops]
    if not cols:
        return np.zeros((npat, 0), dtype=bool)
    return np.column_stack(cols)


def fault_simulate(netlist: Netlist, patterns: np.ndarray,
                   faults: list | None = None,
                   state: np.ndarray | None = None) -> dict:
    """Which faults the pattern set detects.

    A fault is detected when any pattern produces a response differing
    from the good machine at any observable point (POs plus flop D
    pins — full scan observability).  Returns fault -> bool.
    """
    patterns = np.asarray(patterns, dtype=bool)
    if patterns.ndim != 2 or \
            patterns.shape[1] != len(netlist.primary_inputs):
        raise ValueError("patterns must be (n, num_PI)")
    if faults is None:
        faults = enumerate_faults(netlist)
    flops = netlist.sequential_gates()
    if state is None:
        state = np.zeros((patterns.shape[0], len(flops)), dtype=bool)
    good = _simulate_with_fault(netlist, patterns, state, None)
    detected = {}
    for fault in faults:
        bad = _simulate_with_fault(netlist, patterns, state, fault)
        detected[fault] = bool((good ^ bad).any())
    return detected


def fault_coverage(detected: dict) -> float:
    """Fraction of simulated faults detected."""
    if not detected:
        return 0.0
    return sum(detected.values()) / len(detected)
