"""Test compression: LFSR stimulus, XOR expansion, MISR compaction.

Sawicki (E13): "high-compression DFT technologies will be targeted at
low-pin-count test, helping to enable lower cost packaging."  The
compression architecture trades tester pins for on-chip chains: an
LFSR-seeded XOR expander drives many short internal chains from few
pins, and a MISR signature replaces per-cycle output comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class Lfsr:
    """A Galois LFSR over GF(2) (bijective by construction)."""

    def __init__(self, width: int, taps: list | None = None,
                 seed: int = 1):
        if width < 2:
            raise ValueError("width must be >= 2")
        if seed <= 0:
            raise ValueError("seed must be a nonzero state")
        self.width = width
        # Default taps: maximal-length polynomials for common widths
        # (polynomial exponents; the +1 term is implicit).
        default_taps = {
            4: [4, 3], 8: [8, 6, 5, 4], 16: [16, 14, 13, 11],
            24: [24, 23, 22, 17], 32: [32, 30, 26, 25],
        }
        self.taps = taps or default_taps.get(width, [width, width - 1])
        if any(t < 1 or t > width for t in self.taps):
            raise ValueError("taps out of range")
        self._mask = 0
        for t in self.taps:
            self._mask |= 1 << (t - 1)
        self.state = seed & ((1 << width) - 1) or 1

    def step(self) -> int:
        """Advance one cycle; returns the output bit."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self._mask
        return out

    def bits(self, count: int) -> np.ndarray:
        """The next ``count`` output bits."""
        return np.array([self.step() for _ in range(count)], dtype=bool)

    def period(self, limit: int | None = None) -> int:
        """Cycle length from the current state (bounded search)."""
        if limit is None:
            limit = 1 << self.width
        start = self.state
        for k in range(1, limit + 1):
            self.step()
            if self.state == start:
                return k
        return limit


class Misr:
    """Multiple-input signature register (parallel LFSR compactor)."""

    def __init__(self, width: int, taps: list | None = None):
        self.lfsr = Lfsr(width, taps, seed=1)
        self.lfsr.state = 0
        self.width = width

    def absorb(self, bits: np.ndarray) -> None:
        """XOR a response slice into the register and shift."""
        word = 0
        for i, b in enumerate(np.asarray(bits, dtype=bool)[:self.width]):
            word |= int(b) << i
        state = self.lfsr.state ^ word
        out = state & 1
        state >>= 1
        if out:
            state ^= self.lfsr._mask
        self.lfsr.state = state & ((1 << self.width) - 1)

    @property
    def signature(self) -> int:
        return self.lfsr.state

    def aliasing_probability(self) -> float:
        """Classic 2^-width aliasing bound."""
        return 2.0 ** -self.width


@dataclass(frozen=True)
class CompressionConfig:
    """A compression architecture instance.

    ``scan_pins`` tester channels (split evenly in/out),
    ``internal_chains`` on-chip chains behind the expander,
    ``flops`` total scan flops.
    """

    scan_pins: int
    internal_chains: int
    flops: int

    def __post_init__(self) -> None:
        if self.scan_pins < 2 or self.scan_pins % 2:
            raise ValueError("scan_pins must be an even count >= 2")
        if self.internal_chains < 1 or self.flops < 1:
            raise ValueError("chains and flops must be positive")
        if self.internal_chains < self.scan_pins // 2:
            raise ValueError("expander cannot reduce chains below pins")

    @property
    def compression_ratio(self) -> float:
        """Internal chains per tester input channel."""
        return self.internal_chains / (self.scan_pins / 2)

    @property
    def chain_length(self) -> int:
        """Longest internal chain (balanced partition)."""
        return -(-self.flops // self.internal_chains)

    def shift_cycles(self, patterns: int) -> int:
        """Total scan shift cycles for a pattern set."""
        return patterns * (self.chain_length + 1)


def test_cost_model(flops: int, patterns: int, *, scan_pins: int,
                    internal_chains: int | None = None,
                    tester_cost_per_s: float = 0.03,
                    shift_mhz: float = 50.0,
                    pin_cost_usd: float = 0.002) -> dict:
    """Per-die test cost under a compression configuration.

    Captures both Sawicki levers: compression shortens test time
    (chains shorten), and fewer pins cut package/tester channel cost.
    """
    if internal_chains is None:
        internal_chains = scan_pins // 2
    cfg = CompressionConfig(scan_pins, internal_chains, flops)
    cycles = cfg.shift_cycles(patterns)
    seconds = cycles / (shift_mhz * 1e6)
    return {
        "config": cfg,
        "test_seconds": seconds,
        "tester_cost_usd": seconds * tester_cost_per_s,
        "pin_cost_usd": scan_pins * pin_cost_usd,
        "total_cost_usd": seconds * tester_cost_per_s +
        scan_pins * pin_cost_usd,
        "compression_ratio": cfg.compression_ratio,
    }


def expander_matrix(scan_in_pins: int, internal_chains: int,
                    seed: int = 0) -> np.ndarray:
    """A random XOR fanout matrix (chains x pins) for the expander."""
    if internal_chains < scan_in_pins:
        raise ValueError("expander must fan out, not in")
    rng = np.random.default_rng(seed)
    m = rng.integers(0, 2, size=(internal_chains, scan_in_pins))
    # Every chain must tap at least one pin.
    for r in range(internal_chains):
        if not m[r].any():
            m[r, rng.integers(0, scan_in_pins)] = 1
    return m.astype(bool)


def expand_stimulus(matrix: np.ndarray, pin_bits: np.ndarray) -> np.ndarray:
    """Chain stimulus = XOR-expander(pin stimulus) per shift cycle."""
    pin_bits = np.asarray(pin_bits, dtype=bool)
    return (matrix @ pin_bits.astype(np.uint8) % 2).astype(bool)
