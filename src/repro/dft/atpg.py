"""Random-pattern ATPG with coverage tracking."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dft.faults import enumerate_faults, fault_simulate
from repro.netlist.circuit import Netlist


@dataclass
class AtpgResult:
    """Outcome of a test-generation run."""

    patterns: np.ndarray
    coverage: float
    detected: int
    total_faults: int
    coverage_curve: list = field(default_factory=list)  # per batch

    @property
    def pattern_count(self) -> int:
        return int(self.patterns.shape[0])


def random_atpg(netlist: Netlist, *, target_coverage: float = 0.95,
                batch: int = 32, max_patterns: int = 1024,
                seed: int = 0,
                state_patterns: bool = True) -> AtpgResult:
    """Generate random patterns until coverage stalls or hits target.

    Batches of random patterns are fault-simulated against the
    remaining fault list (fault dropping); the coverage curve shows the
    classic fast-then-flat random-pattern profile.  With
    ``state_patterns`` flop states are randomized too (full-scan
    assumption: any state is reachable through the chain).
    """
    if not 0 < target_coverage <= 1:
        raise ValueError("target_coverage in (0, 1]")
    rng = np.random.default_rng(seed)
    faults = enumerate_faults(netlist)
    remaining = list(faults)
    total = len(faults)
    kept = []
    curve = []
    detected_count = 0
    flops = netlist.sequential_gates()
    while remaining and detected_count / total < target_coverage:
        if sum(len(p) for p in kept) >= max_patterns:
            break
        vecs = rng.random((batch, len(netlist.primary_inputs))) < 0.5
        state = (rng.random((batch, len(flops))) < 0.5) if state_patterns \
            else np.zeros((batch, len(flops)), dtype=bool)
        result = fault_simulate(netlist, vecs, remaining, state)
        newly = [f for f, hit in result.items() if hit]
        if newly:
            kept.append(vecs)
        detected_count += len(newly)
        remaining = [f for f in remaining if not result[f]]
        curve.append(detected_count / total)
        if len(curve) >= 3 and curve[-1] == curve[-3]:
            break  # two stalled batches: random patterns exhausted
    patterns = np.vstack(kept) if kept else \
        np.zeros((0, len(netlist.primary_inputs)), dtype=bool)
    return AtpgResult(
        patterns=patterns,
        coverage=detected_count / total if total else 0.0,
        detected=detected_count,
        total_faults=total,
        coverage_curve=curve,
    )
