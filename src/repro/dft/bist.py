"""Logic built-in self-test: LFSR stimulus, MISR signature, coverage.

The on-chip end of Sawicki's retargeting story: a BIST controller
(LFSR + MISR) replaces tester patterns entirely — the lowest pin-count
test there is, at the cost of whatever coverage pseudo-random patterns
reach.  This module wraps a netlist in the BIST loop, measures the
*actual* stuck-at coverage of the LFSR sequence by fault simulation,
and produces the golden signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dft.compression import Lfsr, Misr
from repro.dft.faults import enumerate_faults, fault_simulate
from repro.netlist.circuit import Netlist


@dataclass
class BistResult:
    """Outcome of a BIST session."""

    patterns: int
    coverage: float
    golden_signature: int
    signature_width: int
    detected: int
    total_faults: int

    @property
    def escape_risk(self) -> float:
        """Undetected-fault fraction plus MISR aliasing."""
        return (1.0 - self.coverage) + 2.0 ** -self.signature_width


def lfsr_patterns(lfsr: Lfsr, count: int, width: int) -> np.ndarray:
    """``count`` pseudo-random vectors of ``width`` bits each."""
    if count < 1 or width < 1:
        raise ValueError("count and width must be positive")
    bits = lfsr.bits(count * width)
    return bits.reshape(count, width)


def run_bist(netlist: Netlist, *, patterns: int = 128,
             lfsr_width: int = 24, misr_width: int = 24,
             seed: int = 1) -> BistResult:
    """Self-test a netlist with on-chip generated patterns.

    Applies ``patterns`` LFSR vectors (flop state randomized via the
    scan path, full-scan assumption), fault-simulates the set for the
    real coverage, and compacts the good-machine response into the
    golden MISR signature.
    """
    if not netlist.primary_inputs:
        raise ValueError("netlist has no primary inputs")
    lfsr = Lfsr(lfsr_width, seed=seed)
    n_pi = len(netlist.primary_inputs)
    flops = netlist.sequential_gates()
    vecs = lfsr_patterns(lfsr, patterns, n_pi)
    state = lfsr_patterns(lfsr, patterns, len(flops)) if flops else \
        np.zeros((patterns, 0), dtype=bool)

    # Coverage by fault simulation of the exact BIST stimulus.
    faults = enumerate_faults(netlist)
    detected_map = fault_simulate(netlist, vecs, faults, state)
    detected = sum(detected_map.values())

    # Golden signature from the good machine.
    responses = netlist.simulate(vecs, state)
    misr = Misr(misr_width)
    for row in responses:
        misr.absorb(row)
    return BistResult(
        patterns=patterns,
        coverage=detected / len(faults) if faults else 0.0,
        golden_signature=misr.signature,
        signature_width=misr_width,
        detected=detected,
        total_faults=len(faults),
    )


def signature_detects(netlist: Netlist, fault, *, patterns: int = 128,
                      lfsr_width: int = 24, misr_width: int = 24,
                      seed: int = 1) -> bool:
    """Would the BIST signature flag this specific fault?

    Simulates the faulty machine through the same LFSR/MISR loop and
    compares signatures — the end-to-end check including aliasing.
    """
    from repro.dft.faults import _simulate_with_fault

    golden = run_bist(netlist, patterns=patterns,
                      lfsr_width=lfsr_width, misr_width=misr_width,
                      seed=seed)
    lfsr = Lfsr(lfsr_width, seed=seed)
    n_pi = len(netlist.primary_inputs)
    flops = netlist.sequential_gates()
    vecs = lfsr_patterns(lfsr, patterns, n_pi)
    state = lfsr_patterns(lfsr, patterns, len(flops)) if flops else \
        np.zeros((patterns, 0), dtype=bool)
    # Observable response at POs only (the MISR taps the outputs).
    npat = vecs.shape[0]
    full = _simulate_with_fault(netlist, vecs, state, fault)
    n_po = len(netlist.primary_outputs)
    faulty = full[:, :n_po]
    misr = Misr(misr_width)
    for row in faulty:
        misr.absorb(row)
    return misr.signature != golden.golden_signature