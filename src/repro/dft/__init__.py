"""Design-for-test: scan, fault simulation, ATPG, compression.

Rossi (E10): "Why is it needed to perform, later during the
implementation, the scan chain reordering to alleviate the congestion
...?  Even in this case, a radical change in the approach is required."
Sawicki (E13): "high-compression DFT technologies will be targeted at
low-pin-count test, helping to enable lower cost packaging."

* :mod:`repro.dft.scan` — scan insertion and chain stitching: front-end
  (netlist-order) vs layout-aware (nearest-neighbor + 2-opt) ordering.
* :mod:`repro.dft.faults` — stuck-at fault model and bit-parallel fault
  simulation.
* :mod:`repro.dft.atpg` — random-pattern test generation with coverage
  tracking.
* :mod:`repro.dft.compression` — LFSR/XOR-expander/MISR compression and
  the low-pin-count test-cost model.
"""

from repro.dft.scan import (
    ScanChain,
    chain_wirelength,
    insert_scan,
    reorder_chain,
)
from repro.dft.faults import (
    Fault,
    enumerate_faults,
    fault_simulate,
)
from repro.dft.atpg import AtpgResult, random_atpg
from repro.dft.compression import (
    CompressionConfig,
    Lfsr,
    Misr,
    test_cost_model,
)
from repro.dft.bist import BistResult, run_bist

__all__ = [
    "insert_scan",
    "ScanChain",
    "reorder_chain",
    "chain_wirelength",
    "Fault",
    "enumerate_faults",
    "fault_simulate",
    "random_atpg",
    "AtpgResult",
    "Lfsr",
    "Misr",
    "CompressionConfig",
    "test_cost_model",
    "BistResult",
    "run_bist",
]
