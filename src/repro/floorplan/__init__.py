"""Floorplanning: slicing trees, annealing, and power-grid synthesis.

Rossi: "The tools are today supposed to support automatic power grid
synthesis and floor plan but retrofits to get around problems of
congestion, timing and current/power densities are, as a matter of
fact, manual."  This package provides the automatic version: a
simulated-annealing slicing floorplanner, a power-grid synthesizer
sized from current budgets, and a closed-loop retrofit driver
(:func:`retrofit_floorplan`) that iterates floorplan -> analysis ->
adjustment without the designer in the loop.
"""

from repro.floorplan.slicing import (
    Block,
    Floorplan,
    SlicingTree,
    anneal_floorplan,
)
from repro.floorplan.pgrid import (
    PowerGridSpec,
    synthesize_power_grid,
)
from repro.floorplan.retrofit import retrofit_floorplan

__all__ = [
    "Block",
    "SlicingTree",
    "Floorplan",
    "anneal_floorplan",
    "PowerGridSpec",
    "synthesize_power_grid",
    "retrofit_floorplan",
]
