"""Slicing floorplans: Polish expressions optimized by annealing.

The classic Wong-Liu formulation: a floorplan of n blocks is a slicing
tree encoded as a normalized Polish expression over block ids and the
cut operators ``H``/``V``; simulated annealing perturbs the expression
with the three standard moves and the area/wirelength cost drives it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Block:
    """A floorplan block (hard if one shape, soft if aspect range)."""

    name: str
    area: float
    min_aspect: float = 0.5
    max_aspect: float = 2.0

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError("area must be positive")
        if not 0 < self.min_aspect <= self.max_aspect:
            raise ValueError("bad aspect range")

    def shapes(self, count: int = 3) -> list:
        """(w, h) candidates across the aspect range."""
        out = []
        for i in range(count):
            t = i / max(count - 1, 1)
            aspect = self.min_aspect * (self.max_aspect /
                                        self.min_aspect) ** t
            h = math.sqrt(self.area / aspect)
            out.append((aspect * h, h))
        return out


@dataclass
class Floorplan:
    """A realized floorplan: block placements plus die dimensions."""

    width: float
    height: float
    positions: dict = field(default_factory=dict)  # name -> (x, y, w, h)

    @property
    def area(self) -> float:
        return self.width * self.height

    def block_area(self) -> float:
        return sum(w * h for _, _, w, h in self.positions.values())

    @property
    def whitespace_fraction(self) -> float:
        """Fraction of the die not covered by blocks."""
        if self.area == 0:
            return 0.0
        return 1.0 - self.block_area() / self.area

    def center_of(self, name: str) -> tuple:
        x, y, w, h = self.positions[name]
        return (x + w / 2, y + h / 2)

    def overlaps(self) -> list:
        """Pairs of overlapping blocks (a valid slicing plan has none)."""
        items = list(self.positions.items())
        bad = []
        for i, (na, (xa, ya, wa, ha)) in enumerate(items):
            for nb, (xb, yb, wb, hb) in items[i + 1:]:
                if xa < xb + wb - 1e-9 and xb < xa + wa - 1e-9 and \
                        ya < yb + hb - 1e-9 and yb < ya + ha - 1e-9:
                    bad.append((na, nb))
        return bad


class SlicingTree:
    """A normalized Polish expression over blocks."""

    def __init__(self, blocks: list, expression: list | None = None):
        if len(blocks) < 2:
            raise ValueError("need at least two blocks")
        self.blocks = {b.name: b for b in blocks}
        if expression is None:
            expression = []
            names = [b.name for b in blocks]
            expression.append(names[0])
            for name in names[1:]:
                expression.append(name)
                expression.append("V" if len(expression) % 4 else "H")
        self.expression = list(expression)
        self._validate()

    def _validate(self) -> None:
        depth = 0
        prev = None
        for tok in self.expression:
            if tok in ("H", "V"):
                depth -= 1
                if depth < 1:
                    raise ValueError("malformed Polish expression")
            else:
                if tok not in self.blocks:
                    raise ValueError(f"unknown block {tok!r}")
                depth += 1
            prev = tok
        if depth != 1:
            raise ValueError("expression does not reduce to one tree")

    # ------------------------------------------------------------------
    # Realization (stockmeyer-lite: pick best shape combination greedily)
    # ------------------------------------------------------------------

    def realize(self) -> Floorplan:
        """Evaluate the expression bottom-up into a floorplan.

        Each leaf carries its candidate shape list; operators combine
        the Pareto-minimal (w, h) options of their children (a pruned
        Stockmeyer); the root picks the min-area shape.
        """
        stack: list = []
        for tok in self.expression:
            if tok in ("H", "V"):
                right = stack.pop()
                left = stack.pop()
                stack.append(_combine(left, right, tok))
            else:
                block = self.blocks[tok]
                options = [
                    ((w, h), ("leaf", tok, (w, h)))
                    for w, h in block.shapes()
                ]
                stack.append(_pareto(options))
        options = stack.pop()
        (w, h), plan = min(options, key=lambda o: o[0][0] * o[0][1])
        fp = Floorplan(w, h)
        _emit(plan, 0.0, 0.0, fp)
        return fp

    def copy(self) -> "SlicingTree":
        return SlicingTree(list(self.blocks.values()),
                           list(self.expression))

    # ------------------------------------------------------------------
    # Annealing moves
    # ------------------------------------------------------------------

    def perturb(self, rng: random.Random) -> "SlicingTree":
        """One of the three Wong-Liu moves, returned as a new tree."""
        expr = list(self.expression)
        move = rng.randrange(3)
        operands = [i for i, t in enumerate(expr) if t not in ("H", "V")]
        if move == 0 and len(operands) >= 2:
            # M1: swap two adjacent operands.
            k = rng.randrange(len(operands) - 1)
            i, j = operands[k], operands[k + 1]
            expr[i], expr[j] = expr[j], expr[i]
        elif move == 1:
            # M2: complement a chain of operators.
            ops = [i for i, t in enumerate(expr) if t in ("H", "V")]
            if ops:
                i = rng.choice(ops)
                expr[i] = "H" if expr[i] == "V" else "V"
        else:
            # M3: swap an adjacent operand/operator pair if still valid.
            for _ in range(10):
                i = rng.randrange(len(expr) - 1)
                a, b = expr[i], expr[i + 1]
                if (a in ("H", "V")) == (b in ("H", "V")):
                    continue
                cand = list(expr)
                cand[i], cand[i + 1] = cand[i + 1], cand[i]
                try:
                    SlicingTree(list(self.blocks.values()), cand)
                except ValueError:
                    continue
                expr = cand
                break
        try:
            return SlicingTree(list(self.blocks.values()), expr)
        except ValueError:
            return self.copy()


def _pareto(options: list) -> list:
    """Keep only Pareto-minimal (w, h) options."""
    options = sorted(options, key=lambda o: (o[0][0], o[0][1]))
    kept = []
    best_h = float("inf")
    for (w, h), plan in options:
        if h < best_h - 1e-12:
            kept.append(((w, h), plan))
            best_h = h
    return kept[:6]


def _combine(left: list, right: list, op: str) -> list:
    out = []
    for (wl, hl), pl in left:
        for (wr, hr), pr in right:
            if op == "V":   # side by side
                w, h = wl + wr, max(hl, hr)
            else:           # stacked
                w, h = max(wl, wr), hl + hr
            out.append(((w, h), (op, pl, pr, (wl, hl), (wr, hr))))
    return _pareto(out)


def _emit(plan, x: float, y: float, fp: Floorplan) -> tuple:
    kind = plan[0]
    if kind == "leaf":
        _, name, (w, h) = plan
        fp.positions[name] = (x, y, w, h)
        return (w, h)
    op, left, right, (wl, hl), (wr, hr) = plan
    _emit(left, x, y, fp)
    if op == "V":
        _emit(right, x + wl, y, fp)
        return (wl + wr, max(hl, hr))
    _emit(right, x, y + hl, fp)
    return (max(wl, wr), hl + hr)


def anneal_floorplan(blocks: list, nets: list | None = None, *,
                     seed: int = 0, iterations: int = 2000,
                     t_start: float = 1.0, t_end: float = 0.01,
                     wirelength_weight: float = 0.2,
                     aspect_weight: float = 0.3) -> tuple:
    """Simulated-annealing floorplan optimization.

    ``nets`` is an optional list of block-name groups; their HPWL
    (between block centers) joins the cost with ``wirelength_weight``;
    die squareness is encouraged by ``aspect_weight``.
    Returns ``(SlicingTree, Floorplan)`` for the best solution found.
    """
    rng = random.Random(seed)
    tree = SlicingTree(blocks)
    current = tree.realize()
    total_area = sum(b.area for b in blocks)

    def cost(fp: Floorplan) -> float:
        c = fp.area / total_area
        aspect = max(fp.width, fp.height) / max(
            min(fp.width, fp.height), 1e-9)
        c += aspect_weight * (aspect - 1.0)
        if nets:
            norm = math.sqrt(total_area)
            for group in nets:
                xs = [fp.center_of(n)[0] for n in group if n in fp.positions]
                ys = [fp.center_of(n)[1] for n in group if n in fp.positions]
                if len(xs) >= 2:
                    c += wirelength_weight * (
                        (max(xs) - min(xs)) + (max(ys) - min(ys))) / norm
        return c

    best_tree, best_fp, best_cost = tree, current, cost(current)
    cur_cost = best_cost
    for step in range(iterations):
        t = t_start * (t_end / t_start) ** (step / max(iterations - 1, 1))
        cand_tree = tree.perturb(rng)
        cand_fp = cand_tree.realize()
        cand_cost = cost(cand_fp)
        delta = cand_cost - cur_cost
        if delta <= 0 or rng.random() < math.exp(-delta / t):
            tree, cur_cost = cand_tree, cand_cost
            if cand_cost < best_cost:
                best_tree, best_fp, best_cost = cand_tree, cand_fp, cand_cost
    return best_tree, best_fp
