"""Power-grid synthesis: strap pitch/width from a current budget.

Sizes a uniform strap grid so the worst static IR drop meets the
budget, then exports a :class:`~repro.power.PowerGrid` for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.grid import PowerGrid


@dataclass
class PowerGridSpec:
    """A synthesized grid: strap geometry plus routing cost."""

    strap_pitch_um: float
    strap_width_um: float
    layers_used: int
    metal_utilization: float     # fraction of routing metal consumed
    strap_res_ohm: float

    def summary(self) -> str:
        """One-line description."""
        return (
            f"straps every {self.strap_pitch_um:.0f} um, "
            f"{self.strap_width_um:.2f} um wide, "
            f"{self.metal_utilization * 100:.1f}% of metal"
        )


def synthesize_power_grid(die_w_um: float, die_h_um: float, *,
                          total_power_w: float, vdd: float,
                          drop_budget_fraction: float = 0.05,
                          sheet_res_ohm_sq: float = 0.03,
                          max_metal_utilization: float = 0.25) -> PowerGridSpec:
    """Choose strap pitch and width meeting an IR budget.

    Walks candidate pitches from coarse to fine, sizing the strap width
    so the tile-level mesh resistance keeps the estimated center drop
    under budget; stops at the first candidate whose metal utilization
    is acceptable.  Raises if no grid fits the budget.
    """
    if total_power_w <= 0 or vdd <= 0:
        raise ValueError("power and vdd must be positive")
    i_total = total_power_w / vdd
    budget_v = vdd * drop_budget_fraction
    for pitch in (200.0, 100.0, 50.0, 25.0):
        nx = max(3, int(die_w_um / pitch))
        ny = max(3, int(die_h_um / pitch))
        i_tile = i_total / (nx * ny)
        # Rough center-drop estimate for a mesh with edge pads: current
        # flows ~nx/4 tiles through straps of per-tile resistance r.
        hops = (min(nx, ny) / 4.0) ** 2 / 2.0
        # Required per-tile strap resistance.
        r_needed = budget_v / max(i_tile * max(hops, 1.0), 1e-12)
        # Strap resistance = sheet_res * pitch / width.
        width = sheet_res_ohm_sq * pitch / max(r_needed, 1e-9)
        width = max(width, 0.2)
        utilization = width / pitch
        if utilization <= max_metal_utilization:
            return PowerGridSpec(
                strap_pitch_um=pitch,
                strap_width_um=width,
                layers_used=2,
                metal_utilization=utilization,
                strap_res_ohm=sheet_res_ohm_sq * pitch / width,
            )
    raise ValueError("no strap grid meets the IR budget; raise the "
                     "budget or add metal")


def grid_from_spec(spec: PowerGridSpec, die_w_um: float, die_h_um: float,
                   *, vdd: float, power_map_uw: np.ndarray) -> PowerGrid:
    """Instantiate an analyzable :class:`PowerGrid` from a spec."""
    ny, nx = power_map_uw.shape
    grid = PowerGrid(nx, ny, vdd=vdd, strap_res_ohm=spec.strap_res_ohm)
    grid.set_current_from_power(power_map_uw)
    return grid
