"""The closed-loop floorplan retrofit Rossi asks for.

"Retrofits to get around problems of congestion, timing and
current/power densities are, as a matter of fact, manual, and relying
only on designer sensibility ... we are missing the global approach
that makes this retrofit fully automatic."

:func:`retrofit_floorplan` is that global loop: floorplan -> power-grid
synthesis -> IR analysis -> block-power spreading / grid upsizing ->
repeat, until the analysis is clean or the iteration budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.floorplan.pgrid import grid_from_spec, synthesize_power_grid
from repro.floorplan.slicing import Block, anneal_floorplan
from repro.power.grid import insert_decaps, spread_hotspots


@dataclass
class RetrofitResult:
    """Outcome of the automatic retrofit loop."""

    iterations: int
    clean: bool
    history: list = field(default_factory=list)  # worst drop per pass
    floorplan: object = None
    spec: object = None

    def improvement(self) -> float:
        """Worst-drop ratio first pass / last pass."""
        if len(self.history) < 2 or self.history[-1] == 0:
            return 1.0
        return self.history[0] / self.history[-1]


def retrofit_floorplan(blocks: list, block_power_w: dict, *,
                       vdd: float = 0.9,
                       drop_budget_fraction: float = 0.05,
                       tiles: int = 12, max_passes: int = 5,
                       seed: int = 0) -> RetrofitResult:
    """Fully automatic floorplan/power retrofit.

    Parameters
    ----------
    blocks:
        Floorplan :class:`~repro.floorplan.Block` list.
    block_power_w:
        Power per block name, in watts.
    """
    missing = [b.name for b in blocks if b.name not in block_power_w]
    if missing:
        raise ValueError(f"blocks without power: {missing}")
    _, fp = anneal_floorplan(blocks, seed=seed, iterations=800)
    total_w = sum(block_power_w.values())
    spec = synthesize_power_grid(
        fp.width, fp.height, total_power_w=total_w, vdd=vdd,
        drop_budget_fraction=drop_budget_fraction)

    history = []
    clean = False
    budget = drop_budget_fraction
    for it in range(max_passes):
        power_map = _rasterize_power(fp, block_power_w, tiles)
        grid = grid_from_spec(spec, fp.width, fp.height, vdd=vdd,
                              power_map_uw=power_map * 1e6)
        report = grid.solve(threshold_fraction=budget)
        history.append(report.worst_drop_mv)
        if not report.hotspots:
            clean = True
            break
        # Retrofit actions, cheapest first: decap, then spread, then a
        # stronger grid.
        insert_decaps(grid, budget_ff=200000, step_ff=5000,
                      threshold_fraction=budget)
        report = grid.solve(threshold_fraction=budget)
        if not report.hotspots:
            history.append(report.worst_drop_mv)
            clean = True
            break
        spread_hotspots(grid, iterations=100, threshold_fraction=budget)
        report = grid.solve(threshold_fraction=budget)
        if not report.hotspots:
            history.append(report.worst_drop_mv)
            clean = True
            break
        # Upsize the grid (halve strap resistance) and try again.
        spec.strap_res_ohm *= 0.5
        spec.strap_width_um *= 2.0
        spec.metal_utilization = min(
            1.0, spec.strap_width_um / spec.strap_pitch_um)
    return RetrofitResult(
        iterations=it + 1, clean=clean, history=history,
        floorplan=fp, spec=spec)


def _rasterize_power(fp, block_power_w: dict, tiles: int) -> np.ndarray:
    """Spread each block's power over the tiles it covers (watts)."""
    grid = np.zeros((tiles, tiles))
    tx = fp.width / tiles
    ty = fp.height / tiles
    for name, (x, y, w, h) in fp.positions.items():
        p = block_power_w.get(name, 0.0)
        x0 = int(np.clip(x / tx, 0, tiles - 1))
        x1 = int(np.clip((x + w) / tx, x0 + 1, tiles))
        y0 = int(np.clip(y / ty, 0, tiles - 1))
        y1 = int(np.clip((y + h) / ty, y0 + 1, tiles))
        area_tiles = (x1 - x0) * (y1 - y0)
        grid[y0:y1, x0:x1] += p / area_tiles
    return grid
