"""Graph-based static timing analysis on mapped netlists."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Gate, Netlist


@dataclass
class WireModel:
    """Net parasitics model.

    ``cap_per_fanout_ff`` is the default lumped estimate (pre-layout);
    ``net_lengths_um`` (net -> routed length) switches a net to
    placement-derived RC when present, using the technology node's
    per-micron parasitics.
    """

    cap_per_fanout_ff: float = 1.0
    cwire_ff_per_um: float = 0.0
    rwire_ohm_per_um: float = 0.0
    net_lengths_um: dict = field(default_factory=dict)

    def net_cap_ff(self, net: str, fanout: int) -> float:
        """Wire capacitance of a net."""
        length = self.net_lengths_um.get(net)
        if length is not None and self.cwire_ff_per_um > 0:
            return self.cwire_ff_per_um * length
        return self.cap_per_fanout_ff * max(fanout, 1)

    def net_delay_ps(self, net: str) -> float:
        """Elmore wire delay of a net (0 for unplaced nets)."""
        length = self.net_lengths_um.get(net)
        if length is None or self.rwire_ohm_per_um <= 0:
            return 0.0
        r = self.rwire_ohm_per_um * length
        c = self.cwire_ff_per_um * length * 1e-15
        return 0.5 * r * c * 1e12

    @staticmethod
    def for_node(node, net_lengths_um: dict | None = None) -> "WireModel":
        """Wire model with a technology node's per-micron parasitics."""
        return WireModel(
            cap_per_fanout_ff=0.4 + 0.1 * node.drawn_nm / 28.0,
            cwire_ff_per_um=node.cwire_ff_per_um,
            rwire_ohm_per_um=node.rwire_ohm_per_um,
            net_lengths_um=net_lengths_um or {},
        )


@dataclass
class TimingReport:
    """Result of one STA run."""

    arrival_ps: dict            # net -> arrival time
    required_ps: dict           # net -> required time
    wns_ps: float               # worst negative slack (min slack)
    critical_path: list         # gate names, source to sink
    clock_period_ps: float

    @property
    def critical_delay_ps(self) -> float:
        """Delay of the longest path (the achievable clock period)."""
        return self.clock_period_ps - self.wns_ps

    def slack_ps(self, net: str) -> float:
        """Slack of a net."""
        return self.required_ps[net] - self.arrival_ps[net]

    def fmax_ghz(self) -> float:
        """Maximum clock frequency implied by the critical path."""
        d = self.critical_delay_ps
        return 1000.0 / d if d > 0 else float("inf")


class TimingAnalyzer:
    """Static timing over a netlist with a wire model.

    Endpoints are primary outputs and flop D pins; startpoints are
    primary inputs and flop Q outputs (launch at t=0).
    """

    def __init__(self, netlist: Netlist, wire_model: WireModel | None = None,
                 clock_period_ps: float = 1000.0):
        self.netlist = netlist
        self.wire = wire_model or WireModel()
        self.clock_period_ps = clock_period_ps

    # ------------------------------------------------------------------

    def load_on_gate(self, gate: Gate, fanout_map: dict) -> float:
        """Capacitive load on a gate's output pin (pins + wire)."""
        loads = fanout_map.get(gate.output, [])
        pin_cap = sum(g.cell.input_cap_ff for g, _ in loads)
        return pin_cap + self.wire.net_cap_ff(gate.output, len(loads))

    def analyze(self) -> TimingReport:
        """Run arrival/required propagation; returns a report.

        Per-net wire delay is computed once per run (forward and
        backward passes share one memo dict), and per-gate cell delay
        once per pass instead of once per direction.
        """
        nl = self.netlist
        fanout = nl.fanout_map()
        # Wire delay memo: net_delay_ps was previously evaluated twice
        # per net per analyze (forward + backward).
        wire_delay = {net: self.wire.net_delay_ps(net) for net in fanout}
        arrival: dict[str, float] = {}
        from_gate: dict[str, str] = {}

        for pi in nl.primary_inputs:
            arrival[pi] = 0.0
        for flop in nl.sequential_gates():
            q_load = self.load_on_gate(flop, fanout)
            arrival[flop.output] = flop.cell.delay_ps(q_load)
            from_gate[flop.output] = flop.name

        order = nl.topological_gates()
        cell_delays: dict[str, float] = {}
        for gate in order:
            load = self.load_on_gate(gate, fanout)
            cell_delay = gate.cell.delay_ps(load)
            cell_delays[gate.name] = cell_delay
            best, best_src = 0.0, None
            for pin in gate.cell.inputs:
                net = gate.pins[pin]
                t = arrival.get(net, 0.0) + wire_delay.get(net, 0.0)
                if t >= best:
                    best, best_src = t, net
            arrival[gate.output] = best + cell_delay
            if best_src is not None:
                from_gate[gate.output] = gate.name

        # Required times, backward.
        T = self.clock_period_ps
        required: dict[str, float] = {n: float("inf") for n in arrival}
        for po in nl.primary_outputs:
            required[po] = min(required.get(po, T), T)
        for flop in nl.sequential_gates():
            d_net = flop.pins["D"]
            setup = flop.cell.intrinsic_ps * 0.5
            required[d_net] = min(required.get(d_net, T), T - setup)
        for gate in reversed(order):
            cell_delay = cell_delays[gate.name]
            req_out = required.get(gate.output, T)
            for pin in gate.cell.inputs:
                net = gate.pins[pin]
                cand = req_out - cell_delay - wire_delay.get(net, 0.0)
                if cand < required.get(net, float("inf")):
                    required[net] = cand
        for net in arrival:
            required.setdefault(net, T)
            if required[net] == float("inf"):
                required[net] = T

        wns = min(
            (required[n] - arrival[n] for n in arrival), default=0.0)
        crit = trace_critical(nl, arrival, required, from_gate)
        return TimingReport(arrival, required, wns, crit, T)

    def _trace_critical(self, arrival, required, from_gate) -> list:
        return trace_critical(self.netlist, arrival, required, from_gate)


def trace_critical(nl: Netlist, arrival, required, from_gate) -> list:
    """Walk the worst-slack endpoint back to a startpoint.

    ``arrival``/``required`` may be plain dicts or any mapping with
    ``get``/``__contains__`` (the incremental engine passes array-backed
    views).  The walk stops explicitly at primary inputs and at flop
    outputs rather than relying on ``from_gate`` lookup misses.
    """
    if not arrival:
        return []
    # Endpoint with the smallest slack.
    endpoints = list(nl.primary_outputs) + [
        f.pins["D"] for f in nl.sequential_gates()]
    endpoints = [e for e in endpoints if e in arrival]
    if not endpoints:
        return []
    startpoints = set(nl.primary_inputs)
    end = min(endpoints, key=lambda n: required[n] - arrival[n])
    path = []
    net = end
    seen = set()
    while net not in seen:
        if net in startpoints:
            break               # reached a primary input: path complete
        if net not in from_gate:
            break               # undriven net (e.g. a removed gate)
        seen.add(net)
        gname = from_gate[net]
        path.append(gname)
        gate = nl.gates[gname]
        if gate.cell.is_sequential:
            break               # flop Q: the launching startpoint
        # Step to the worst-arrival fanin.
        nxt = max(
            (gate.pins[p] for p in gate.cell.inputs),
            key=lambda n: arrival.get(n, 0.0),
        )
        net = nxt
    path.reverse()
    return path


def critical_path(netlist: Netlist, wire_model: WireModel | None = None,
                  clock_period_ps: float = 1000.0) -> TimingReport:
    """One-call STA convenience wrapper."""
    return TimingAnalyzer(netlist, wire_model, clock_period_ps).analyze()
