"""Static timing analysis.

Graph-based STA over mapped netlists: arrival times forward, required
times backward, slacks, and critical-path extraction.  Loads combine
pin capacitances with an optional wire model (lumped per-fanout or
Elmore from placement lengths).

The analyzer is consumed by gate sizing (:mod:`repro.synthesis.sizing`),
the era flows (E1), and the P&R throughput experiments.
"""

from repro.timing.sta import (
    TimingAnalyzer,
    TimingReport,
    WireModel,
    critical_path,
    trace_critical,
)
from repro.timing.incremental import (
    IncrementalReport,
    IncrementalTimingAnalyzer,
)
from repro.timing.cts import (
    ClockTree,
    naive_clock_spine,
    synthesize_clock_tree,
)

__all__ = [
    "TimingAnalyzer",
    "TimingReport",
    "WireModel",
    "critical_path",
    "trace_critical",
    "IncrementalTimingAnalyzer",
    "IncrementalReport",
    "ClockTree",
    "synthesize_clock_tree",
    "naive_clock_spine",
]
