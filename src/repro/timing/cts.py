"""Clock-tree synthesis: recursive bisection (H-tree style).

The clock network is the largest single consumer of dynamic power in a
synchronous design and the reference against which clock gating (E5)
saves; CTS also closes the skew the sequential timing model assumes
away.  The synthesizer recursively partitions the flop set, placing a
balance point at each level's center of mass, and buffers long
segments; insertion delay and skew come from the same Elmore wire
model STA uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# A placed clock sink: (flop name, (x, y)).
Sink = tuple[str, tuple[float, float]]


@dataclass
class ClockTree:
    """A synthesized clock tree."""

    root: tuple[float, float]       # (x, y) of the clock entry point
    segments: list[tuple[float, float, float, float]]
    buffers: list[tuple[float, float]]   # repeater locations
    sink_delays: dict[str, float]   # flop name -> insertion delay ps
    wirelength_um: float

    @property
    def skew_ps(self) -> float:
        """Max - min insertion delay over the sinks."""
        if not self.sink_delays:
            return 0.0
        delays = list(self.sink_delays.values())
        return max(delays) - min(delays)

    @property
    def insertion_delay_ps(self) -> float:
        """Worst insertion delay."""
        return max(self.sink_delays.values(), default=0.0)

    def clock_power_uw(self, node: Any, freq_ghz: float) -> float:
        """Dynamic power of the tree's wire + buffer capacitance."""
        wire_cap_ff = self.wirelength_um * node.cwire_ff_per_um
        buf_cap_ff = len(self.buffers) * 4.0 * node.cgate_ff_per_um * \
            (3.0 * node.gate_length_nm * 1e-3)
        cap_f = (wire_cap_ff + buf_cap_ff) * 1e-15
        return cap_f * node.vdd ** 2 * freq_ghz * 1e9 * 1e6


def synthesize_clock_tree(placement: Any, *, max_leaf: int = 4,
                          buffer_every_um: float | None = None) -> ClockTree:
    """Build a balanced clock tree over the placed flops.

    Recursive bisection: split along the wider axis at the median,
    route from the region's center of mass to each child's, and stop
    when ``max_leaf`` flops remain (leaf-level stubs connect directly).
    Long segments get repeaters every ``buffer_every_um`` (defaults to
    the technology's optimal repeater segment).
    """
    from repro.place.buffering import optimal_buffer_segment_um

    node = placement.netlist.library.node
    if buffer_every_um is None:
        buffer_every_um = max(optimal_buffer_segment_um(node), 1.0)
    flops = [(g.name, placement.positions[g.name])
             for g in placement.netlist.sequential_gates()
             if g.name in placement.positions]
    if not flops:
        raise ValueError("design has no placed flops")

    segments: list[tuple[float, float, float, float]] = []
    buffers: list[tuple[float, float]] = []
    sink_delays: dict[str, float] = {}
    # Per-micron Elmore constants.
    r = node.rwire_ohm_per_um
    c = node.cwire_ff_per_um * 1e-15
    buf_delay_ps = 2.0 * node.fo4_delay_ps()

    def elmore_ps(length: float) -> float:
        return 0.5 * r * c * length ** 2 * 1e12

    def segment_delay(length: float) -> tuple[float, int]:
        """(delay ps, buffers inserted) for one routed segment."""
        assert buffer_every_um is not None
        nbuf = int(length // buffer_every_um)
        if nbuf == 0:
            return elmore_ps(length), 0
        piece = length / (nbuf + 1)
        return (nbuf + 1) * elmore_ps(piece) + nbuf * buf_delay_ps, nbuf

    def center(group: list[Sink]) -> tuple[float, float]:
        xs = [p[0] for _, p in group]
        ys = [p[1] for _, p in group]
        return (sum(xs) / len(xs), sum(ys) / len(ys))

    def build(group: list[Sink], entry: tuple[float, float],
              delay_ps: float) -> None:
        cx, cy = center(group)
        length = abs(entry[0] - cx) + abs(entry[1] - cy)
        d, nbuf = segment_delay(length)
        here = delay_ps + d
        segments.append((entry[0], entry[1], cx, cy))
        for k in range(nbuf):
            t = (k + 1) / (nbuf + 1)
            buffers.append((entry[0] + t * (cx - entry[0]),
                            entry[1] + t * (cy - entry[1])))
        nonlocal_wire[0] += length
        if len(group) <= max_leaf:
            for name, (x, y) in group:
                stub = abs(x - cx) + abs(y - cy)
                segments.append((cx, cy, x, y))
                nonlocal_wire[0] += stub
                sink_delays[name] = here + elmore_ps(stub)
            return
        xs = [p[0] for _, p in group]
        ys = [p[1] for _, p in group]
        horizontal = (max(xs) - min(xs)) >= (max(ys) - min(ys))
        axis = 0 if horizontal else 1
        ordered = sorted(group, key=lambda it: it[1][axis])
        half = len(ordered) // 2
        build(ordered[:half], (cx, cy), here)
        build(ordered[half:], (cx, cy), here)

    nonlocal_wire = [0.0]
    root = (0.0, 0.0)  # clock pad at the die corner
    build(flops, root, 0.0)
    return ClockTree(
        root=root,
        segments=segments,
        buffers=buffers,
        sink_delays=sink_delays,
        wirelength_um=nonlocal_wire[0],
    )


def naive_clock_spine(placement: Any) -> ClockTree:
    """The strawman: one serpentine wire visiting flops in name order.

    Used as the CTS ablation baseline — its skew grows with the chain
    length where the balanced tree's stays bounded.
    """
    node = placement.netlist.library.node
    flops = [(g.name, placement.positions[g.name])
             for g in placement.netlist.sequential_gates()
             if g.name in placement.positions]
    if not flops:
        raise ValueError("design has no placed flops")
    r = node.rwire_ohm_per_um
    c = node.cwire_ff_per_um * 1e-15
    segments: list[tuple[float, float, float, float]] = []
    sink_delays: dict[str, float] = {}
    total = 0.0
    prev = (0.0, 0.0)
    delay = 0.0
    for name, (x, y) in flops:
        length = abs(x - prev[0]) + abs(y - prev[1])
        delay += 0.5 * r * c * length ** 2 * 1e12
        segments.append((prev[0], prev[1], x, y))
        total += length
        sink_delays[name] = delay
        prev = (x, y)
    return ClockTree(
        root=(0.0, 0.0),
        segments=segments,
        buffers=[],
        sink_delays=sink_delays,
        wirelength_um=total,
    )
