"""Incremental, vectorized static timing analysis.

The optimization inner loops (gate sizing, Vt assignment, timing-driven
placement, signoff) previously re-ran the scalar
:class:`~repro.timing.sta.TimingAnalyzer` from scratch on every
iteration.  :class:`IncrementalTimingAnalyzer` replaces that with two
cooperating mechanisms:

* **Level-packed vectorized full STA** — the netlist is levelized once
  into numpy arrays (per-level fanin gathers, one fused
  ``intrinsic + res * load`` delay evaluation per level), so even the
  cold pass beats the scalar walk.
* **Cone-limited incremental updates** — after a cell resize (drive or
  Vt swap) only the affected fanout cone (arrivals) and fanin cone
  (required times) are repropagated, with an unchanged-value cutoff
  that stops the wave as soon as a recomputed value is bit-identical
  to the cached one.

Edits reach the engine through the :class:`~repro.netlist.circuit
.NetlistEdit` change journal (``Netlist.subscribe``).  Footprint-
compatible resizes take the cone path; connectivity edits (rewire,
add/remove gate, scan replacement) relevelize the graph and rerun the
vectorized full passes — still one numpy sweep, and still bit-identical
to the scalar engine.

Bit-identity is a hard invariant, not an aspiration: every arithmetic
step mirrors the scalar engine's expression order (pin-cap sums are
accumulated in packed pin order — the same left-to-right order as the
scalar ``sum`` over the memoized fanout map; delays are
``intrinsic + res * load`` in that order; max/min reductions are
exact), so ``arrival``, ``required``, and WNS match
``TimingAnalyzer.analyze()`` bit for bit after any edit sequence.

The levelized graph is built from the columnar
:class:`~repro.netlist.packed.PackedNetlist` view
(``Netlist.to_packed()``): connectivity, levels, pin caps, and reader
CSRs all come from vectorized passes over the interned int32 arrays
instead of re-walking the gate dicts.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.netlist.circuit import Netlist, NetlistEdit
from repro.netlist.packed import csr_gather
from repro.timing.sta import WireModel, trace_critical

_INF = float("inf")


def _seg_max0(vals: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment max of ``vals`` floored at 0.0.

    ``offsets`` has one more entry than there are segments; empty
    segments yield 0.0 (the scalar engine's ``best`` initialisation,
    which also covers zero-input cells like TIEHI).
    """
    starts = offsets[:-1]
    ends = offsets[1:]
    out = np.zeros(len(starts))
    nonempty = ends > starts
    if vals.size and nonempty.any():
        out[nonempty] = np.maximum.reduceat(vals, starts[nonempty])
    np.maximum(out, 0.0, out=out)
    return out


class _ArrayMap:
    """Read-only dict façade over a value array, keyed by net name.

    Presents the engine's packed arrays to dict-consuming code
    (``trace_critical``) without materializing a real dict.
    """

    __slots__ = ("_net_id", "_vals", "_mask", "_count")

    def __init__(self, net_id, vals, mask):
        self._net_id = net_id
        self._vals = vals
        self._mask = mask
        self._count = int(mask.sum())

    def __contains__(self, net) -> bool:
        i = self._net_id.get(net)
        return i is not None and bool(self._mask[i])

    def __getitem__(self, net) -> float:
        if net not in self:
            raise KeyError(net)
        return float(self._vals[self._net_id[net]])

    def get(self, net, default=0.0):
        return self[net] if net in self else default

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


class _LevelGraph:
    """The levelized timing graph: every per-gate/per-net quantity the
    forward/backward passes touch, packed into numpy arrays in
    (level, topological-index) order.

    Built from the columnar ``Netlist.to_packed()`` view: levels come
    from :meth:`PackedNetlist.comb_levels`, fanin/reader CSRs are
    gathers over the packed pin arrays, and pin-cap sums are
    ``np.bincount`` accumulations in packed pin order — the same
    left-to-right float addition order as the scalar engine's
    ``sum`` over the memoized fanout map, keeping bit-identity.
    Cell parameters (intrinsic/res/cap/delay) still come from the live
    ``Cell`` objects so footprint swaps via ``_refresh_cells`` observe
    the same instances."""

    def __init__(self, nl: Netlist, wire: WireModel, T: float):
        packed = nl.to_packed()
        level_all, cyclic = packed.comb_levels()
        if cyclic.size:
            raise ValueError("combinational cycle detected")
        seq = packed.seq_gate_mask()
        G_all = packed.num_gates
        n_nets = packed.num_nets

        self.net_names = list(packed.net_names)
        self.net_id = {n: i for i, n in enumerate(self.net_names)}

        gate_objs = list(nl.gates.values())
        names_all = packed.gate_names
        caps_all = (np.array([g.cell.input_cap_ff for g in gate_objs])
                    if G_all else np.empty(0))

        # Comb gates in (level, packed-row) order.  Within-level order
        # only feeds exact max/min reductions, so it is free.
        comb_rows = np.flatnonzero(~seq)
        lv = level_all[comb_rows]
        order = np.argsort(lv, kind="stable")
        perm = comb_rows[order]
        perm_l = perm.tolist()
        G = int(perm.size)
        self.level = lv[order]
        self.num_levels = int(self.level[-1]) + 1 if G else 0
        # level_starts[L] = first gate index at level L.
        self.level_starts = np.searchsorted(
            self.level, np.arange(self.num_levels + 1))

        out_all = packed.gate_output.astype(np.int64)
        self.out = out_all[perm] if G else np.empty(0, np.int64)
        self.gate_names = [names_all[i] for i in perm_l]
        self.gid = {n: i for i, n in enumerate(self.gate_names)}
        cells = [gate_objs[i].cell for i in perm_l]
        self.intrinsic = np.array([c.intrinsic_ps for c in cells])
        self.res = np.array([c.drive_res_kohm for c in cells])

        # Fanin CSR: a gather of the packed pin rows in perm order.
        off = packed.pin_off.astype(np.int64)
        counts_all = np.diff(off)
        pnet = packed.pin_net.astype(np.int64)
        self.fi_off = np.zeros(G + 1, dtype=np.int64)
        np.cumsum(counts_all[perm], out=self.fi_off[1:])
        self.fi_flat = (pnet[csr_gather(off[:-1][perm], counts_all[perm])]
                        if G else np.empty(0, np.int64))

        # Per-net quantities.  ``bincount`` adds weights in pin index
        # order — exactly the scalar engine's fanout-map sum order —
        # so the pin-cap floats are bit-identical.
        row_all = np.repeat(np.arange(G_all, dtype=np.int64), counts_all)
        self.pin_cap = np.bincount(pnet, weights=caps_all[row_all],
                                   minlength=n_nets) \
            if pnet.size else np.zeros(n_nets)
        n_loads = np.bincount(pnet, minlength=n_nets) \
            if pnet.size else np.zeros(n_nets, dtype=np.int64)
        self.wire_cap = np.array(
            [wire.net_cap_ff(net, int(k))
             for net, k in zip(self.net_names, n_loads.tolist())]
        ) if n_nets else np.zeros(0)
        self.wire_delay = np.array(
            [wire.net_delay_ps(net) for net in self.net_names]
        ) if n_nets else np.zeros(0)

        self.load = self.pin_cap[self.out] + self.wire_cap[self.out] \
            if G else np.empty(0)
        self.cell_delay = self.intrinsic + self.res * self.load

        # Per-net comb readers (CSR) and drivers.
        inv = np.full(G_all, -1, dtype=np.int64)
        inv[perm] = np.arange(G, dtype=np.int64)
        rgate = inv[row_all]
        keep = rgate >= 0
        rnet = pnet[keep]
        ro = np.argsort(rnet, kind="stable")
        self.rd_flat = rgate[keep][ro]
        self.rd_off = np.zeros(n_nets + 1, dtype=np.int64)
        np.cumsum(np.bincount(rnet, minlength=n_nets),
                  out=self.rd_off[1:])

        self.drv_gid = np.full(n_nets, -1, dtype=np.int64)
        self.drv_gid[self.out] = np.arange(G, dtype=np.int64)

        # Flops: sources (Q) and endpoints (D).  Packed row order of
        # sequential gates is insertion order — the same order
        # ``sequential_gates()`` yields, which ``_refresh_cells``
        # relies on when indexing ``flop_objs`` by flop id.
        flop_rows = np.flatnonzero(seq)
        flop_l = flop_rows.tolist()
        F = len(flop_l)
        self.flop_names = [names_all[i] for i in flop_l]
        self.fid = {n: i for i, n in enumerate(self.flop_names)}
        self.fl_q = out_all[flop_rows] if F else np.empty(0, np.int64)
        flop_cells = [gate_objs[i].cell for i in flop_l]
        self.fl_setup = np.array(
            [c.intrinsic_ps * 0.5 for c in flop_cells])
        # D-pin nets resolved through the interned pin-name table.
        self.fl_d = np.full(F, -1, dtype=np.int64)
        if F:
            try:
                d_id = packed.pin_names.index("D")
            except ValueError:
                d_id = -1
            inv_f = np.full(G_all, -1, dtype=np.int64)
            inv_f[flop_rows] = np.arange(F, dtype=np.int64)
            frow = inv_f[row_all]
            sel = (packed.pin_name.astype(np.int64) == d_id) & (frow >= 0)
            self.fl_d[frow[sel]] = pnet[sel]
            if (self.fl_d < 0).any():
                raise KeyError("D")
        self.drv_flop = np.full(n_nets, -1, dtype=np.int64)
        self.drv_flop[self.fl_q] = np.arange(F, dtype=np.int64)
        self.fl_load = (self.pin_cap[self.fl_q]
                        + self.wire_cap[self.fl_q]) if F else np.zeros(0)
        self.fl_delay = np.array(
            [c.delay_ps(ld) for c, ld in zip(flop_cells, self.fl_load)])

        # Arrival keys: PIs, flop Qs, comb outputs (the scalar
        # engine's ``arrival`` dict domain).
        self.arr_key = np.zeros(n_nets, dtype=bool)
        self.arr_key[packed.primary_inputs.astype(np.int64)] = True
        self.arr_key[self.fl_q] = True
        self.arr_key[self.out] = True
        self.arr_key_ids = np.flatnonzero(self.arr_key)
        self.arr_key_names = [self.net_names[i]
                              for i in self.arr_key_ids]

        # Required-time bases: T at POs, T - setup at flop D pins.
        self.is_po = np.zeros(n_nets, dtype=bool)
        self.is_po[packed.primary_outputs.astype(np.int64)] = True
        self.flopd_readers: dict[int, list[int]] = {}
        for i in range(F):
            self.flopd_readers.setdefault(int(self.fl_d[i]), []).append(i)
        self.base_req = np.full(n_nets, _INF)
        self.base_req[self.is_po] = T
        for dnet, fids in self.flopd_readers.items():
            for i in fids:
                self.base_req[dnet] = min(self.base_req[dnet],
                                          T - self.fl_setup[i])

        # Critical-path bookkeeping (matches the scalar engine's
        # ``from_gate``: every >=1-input comb gate plus every flop).
        self.from_gate = {}
        for o, n, c in zip(self.out.tolist(), self.gate_names, cells):
            if c.num_inputs >= 1:
                self.from_gate[self.net_names[o]] = n
        for q, n in zip(self.fl_q.tolist(), self.flop_names):
            self.from_gate[self.net_names[q]] = n

        # Value arrays (filled by the passes).
        self.arr = np.zeros(n_nets)
        self.req = np.full(n_nets, _INF)

    # ------------------------------------------------------------------

    def forward_full(self) -> None:
        """Vectorized arrival propagation over all levels."""
        self.arr.fill(0.0)
        if self.fl_q.size:
            self.arr[self.fl_q] = self.fl_delay
        for L in range(self.num_levels):
            s, e = self.level_starts[L], self.level_starts[L + 1]
            lo, hi = self.fi_off[s], self.fi_off[e]
            fi = self.fi_flat[lo:hi]
            t = self.arr[fi] + self.wire_delay[fi]
            best = _seg_max0(t, self.fi_off[s:e + 1] - lo)
            self.arr[self.out[s:e]] = best + self.cell_delay[s:e]

    def backward_full(self) -> None:
        """Vectorized required-time propagation, highest level first."""
        np.copyto(self.req, self.base_req)
        for L in range(self.num_levels - 1, -1, -1):
            s, e = self.level_starts[L], self.level_starts[L + 1]
            lo, hi = self.fi_off[s], self.fi_off[e]
            if hi == lo:
                continue
            fi = self.fi_flat[lo:hi]
            counts = np.diff(self.fi_off[s:e + 1])
            cand = np.repeat(
                self.req[self.out[s:e]] - self.cell_delay[s:e], counts
            ) - self.wire_delay[fi]
            np.minimum.at(self.req, fi, cand)

    # ------------------------------------------------------------------

    def gate_fanins(self, i: int) -> np.ndarray:
        return self.fi_flat[self.fi_off[i]:self.fi_off[i + 1]]

    def net_readers(self, nid: int) -> np.ndarray:
        return self.rd_flat[self.rd_off[nid]:self.rd_off[nid + 1]]

    def recompute_arrivals(self, gids: list[int]) -> np.ndarray:
        """New arrival values for a mini-batch of same-level gates,
        using the exact per-gate arithmetic of the full pass."""
        ids = np.asarray(gids, dtype=np.int64)
        segs = [self.gate_fanins(int(i)) for i in ids]
        counts = np.array([len(s) for s in segs], dtype=np.int64)
        fi = (np.concatenate(segs) if segs
              else np.empty(0, np.int64))
        t = self.arr[fi] + self.wire_delay[fi]
        offs = np.concatenate(([0], np.cumsum(counts)))
        best = _seg_max0(t, offs)
        return best + self.cell_delay[ids]

    def recompute_required(self, nid: int) -> float:
        """New required time of one net from its reader candidates."""
        new = self.base_req[nid]
        readers = self.net_readers(nid)
        if readers.size:
            cand = (self.req[self.out[readers]]
                    - self.cell_delay[readers]) - self.wire_delay[nid]
            new = min(new, cand.min())
        return new


class IncrementalReport:
    """Duck-typed :class:`~repro.timing.sta.TimingReport` over the
    engine's packed arrays.

    ``wns_ps`` and ``clock_period_ps`` are eager; ``arrival_ps``,
    ``required_ps``, and ``critical_path`` materialize lazily on first
    access (the hot loops never touch them).  Value arrays are
    snapshotted at construction, so a report stays consistent after
    further engine updates.
    """

    def __init__(self, graph: _LevelGraph, netlist: Netlist, T: float):
        self._g = graph
        self._nl = netlist
        self.clock_period_ps = T
        self._arr = graph.arr.copy()
        self._reqf = np.where(np.isinf(graph.req), T, graph.req)
        self._req_key = graph.arr_key | np.isfinite(graph.req)
        keys = graph.arr_key_ids
        if keys.size:
            self.wns_ps = float(
                (self._reqf[keys] - self._arr[keys]).min())
        else:
            self.wns_ps = 0.0
        self._arrival = None
        self._required = None
        self._critical = None

    # -- TimingReport API ----------------------------------------------

    @property
    def arrival_ps(self) -> dict:
        if self._arrival is None:
            g = self._g
            self._arrival = dict(zip(
                g.arr_key_names, self._arr[g.arr_key_ids].tolist()))
        return self._arrival

    @property
    def required_ps(self) -> dict:
        if self._required is None:
            g = self._g
            ids = np.flatnonzero(self._req_key)
            self._required = dict(zip(
                (g.net_names[i] for i in ids),
                self._reqf[ids].tolist()))
        return self._required

    @property
    def critical_path(self) -> list:
        if self._critical is None:
            g = self._g
            arrival = _ArrayMap(g.net_id, self._arr, g.arr_key)
            required = _ArrayMap(g.net_id, self._reqf, self._req_key)
            self._critical = trace_critical(
                self._nl, arrival, required, g.from_gate)
        return self._critical

    @property
    def critical_delay_ps(self) -> float:
        """Delay of the longest path (the achievable clock period)."""
        return self.clock_period_ps - self.wns_ps

    def slack_ps(self, net: str) -> float:
        """Slack of a net."""
        i = self._g.net_id[net]
        if not self._g.arr_key[i]:
            raise KeyError(net)
        return float(self._reqf[i] - self._arr[i])

    def slacks(self) -> dict:
        """net -> slack over all arrival keys, in one vector op."""
        g = self._g
        vals = self._reqf[g.arr_key_ids] - self._arr[g.arr_key_ids]
        return dict(zip(g.arr_key_names, vals.tolist()))

    def fmax_ghz(self) -> float:
        """Maximum clock frequency implied by the critical path."""
        d = self.critical_delay_ps
        return 1000.0 / d if d > 0 else float("inf")


class IncrementalTimingAnalyzer:
    """Caching STA engine with an ``update(changed_gates)`` fast path.

    Drop-in for :class:`~repro.timing.sta.TimingAnalyzer` —
    ``analyze()`` returns a report with the same API and bit-identical
    numbers — plus:

    * ``update()`` repropagates only the cones affected by the edits
      journaled since the last analysis (or by an explicit
      ``changed_gates`` list), with an unchanged-value cutoff;
    * memoized netlist views and per-net wire delays are computed once
      per levelization instead of once per call.

    The engine subscribes to the netlist's change journal on
    construction; call :meth:`close` (or use it as a context manager)
    to detach.
    """

    def __init__(self, netlist: Netlist,
                 wire_model: WireModel | None = None,
                 clock_period_ps: float = 1000.0):
        self.netlist = netlist
        self.wire = wire_model or WireModel()
        self.clock_period_ps = clock_period_ps
        self._graph: _LevelGraph | None = None
        self._pending: list[NetlistEdit] = []
        self._unsubscribe = netlist.subscribe(self._pending.append)

    def close(self) -> None:
        """Detach from the netlist's change journal."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------

    def _drain(self):
        """Split pending journal edits into resized gate names and a
        structural flag."""
        resized: set[str] = set()
        structural = False
        new_pos = False
        for e in self._pending:
            if e.kind == "resize":
                resized.add(e.gate)
            elif e.kind == "add_output":
                new_pos = True
            else:
                structural = True
        self._pending.clear()
        return resized, structural, new_pos

    def analyze(self) -> IncrementalReport:
        """Full vectorized STA; (re)builds the levelized graph."""
        self._graph = _LevelGraph(self.netlist, self.wire,
                                  self.clock_period_ps)
        self._pending.clear()
        g = self._graph
        g.forward_full()
        g.backward_full()
        return IncrementalReport(g, self.netlist, self.clock_period_ps)

    def update(self, changed_gates=None) -> IncrementalReport:
        """Repropagate timing after netlist edits.

        ``changed_gates`` optionally names gates whose cells changed
        outside the journal (legacy ``gate.cell = x`` call sites);
        journaled edits are folded in automatically.  Resize-only edit
        batches take the cone-limited path; connectivity edits
        relevelize and rerun the full vectorized passes.
        """
        if self._graph is None:
            return self.analyze()
        resized, structural, new_pos = self._drain()
        if changed_gates is not None:
            resized.update(
                g if isinstance(g, str) else g.name
                for g in changed_gates)
        if structural or new_pos:
            # Connectivity (or endpoint-set) change: relevelize and
            # resweep.  Still one vectorized pass, still bit-identical.
            return self.analyze()
        if not resized:
            return IncrementalReport(self._graph, self.netlist,
                                     self.clock_period_ps)
        return self._update_resized(resized)

    def repropagate(self) -> IncrementalReport:
        """Full vectorized passes over the cached levelized graph.

        The rebuild-free full analysis: pending resizes are folded into
        the packed arrays, then arrivals and requireds are reswept over
        every level.  Useful after many accumulated edits (when a cone
        update would touch most of the design) and as the steady-state
        full-STA kernel in the perf harness.  Falls back to
        :meth:`analyze` when the graph is missing or a connectivity
        edit is pending.
        """
        if self._graph is None:
            return self.analyze()
        resized, structural, new_pos = self._drain()
        if structural or new_pos:
            return self.analyze()
        if resized:
            self._refresh_cells(resized)
        g = self._graph
        g.forward_full()
        g.backward_full()
        return IncrementalReport(g, self.netlist, self.clock_period_ps)

    # ------------------------------------------------------------------

    def _refresh_cells(self, resized: set):
        """Fold resize edits into the packed arrays.

        Updates per-gate cell parameters, the pin caps of the resized
        gates' fanin nets, flop setup-derived required bases, and the
        loads/delays of every affected driver.  Returns
        ``(changed_flops, changed_gates, bwd_seeds)``: the flop indices
        whose Q arrival changed, the gate indices whose cell delay
        changed, and the net ids whose required base changed.
        """
        g = self._graph
        nl = self.netlist
        fan = nl.fanout_map()
        T = self.clock_period_ps
        dirty_gates: set[int] = set()
        dirty_flops: set[int] = set()
        bwd_seeds: set[int] = set()
        touched_nets: set[int] = set()

        for name in resized:
            gate = nl.gates[name]
            fanin_ids = [g.net_id[gate.pins[p]]
                         for p in gate.cell.inputs]
            if name in g.gid:
                i = g.gid[name]
                g.intrinsic[i] = gate.cell.intrinsic_ps
                g.res[i] = gate.cell.drive_res_kohm
                dirty_gates.add(i)
            else:
                f = g.fid[name]
                dirty_flops.add(f)
                old_setup = g.fl_setup[f]
                g.fl_setup[f] = gate.cell.intrinsic_ps * 0.5
                if g.fl_setup[f] != old_setup:
                    dnet = int(g.fl_d[f])
                    base = T if g.is_po[dnet] else _INF
                    for fj in g.flopd_readers.get(dnet, ()):
                        base = min(base, T - g.fl_setup[fj])
                    if base != g.base_req[dnet]:
                        g.base_req[dnet] = base
                        bwd_seeds.add(dnet)
            # The resized cell presents a new input cap: the loads of
            # its fanin nets change, so their drivers' delays change.
            for nid in set(fanin_ids):
                if nid in touched_nets:
                    continue
                touched_nets.add(nid)
                net = g.net_names[nid]
                g.pin_cap[nid] = sum(
                    ld.cell.input_cap_ff for ld, _ in fan[net])
                if g.drv_gid[nid] >= 0:
                    dirty_gates.add(int(g.drv_gid[nid]))
                elif g.drv_flop[nid] >= 0:
                    dirty_flops.add(int(g.drv_flop[nid]))

        flop_objs = nl.sequential_gates()
        changed_flops = []
        for f in dirty_flops:
            q = int(g.fl_q[f])
            g.fl_load[f] = g.pin_cap[q] + g.wire_cap[q]
            d = flop_objs[f].cell.delay_ps(g.fl_load[f])
            if d != g.fl_delay[f]:
                g.fl_delay[f] = d
                changed_flops.append(f)

        changed_gates = []
        for i in dirty_gates:
            out = int(g.out[i])
            g.load[i] = g.pin_cap[out] + g.wire_cap[out]
            cd = g.intrinsic[i] + g.res[i] * g.load[i]
            if cd != g.cell_delay[i]:
                g.cell_delay[i] = cd
                changed_gates.append(i)
        return changed_flops, changed_gates, bwd_seeds

    def _update_resized(self, resized: set) -> IncrementalReport:
        g = self._graph
        nl = self.netlist
        T = self.clock_period_ps
        changed_flops, changed_gates, bwd_seeds = \
            self._refresh_cells(resized)

        fwd_heap: list = []
        queued: set[int] = set()

        def push_readers(nid: int) -> None:
            for r in g.net_readers(nid):
                r = int(r)
                if r not in queued:
                    queued.add(r)
                    heapq.heappush(fwd_heap, (int(g.level[r]), r))

        for f in changed_flops:
            q = int(g.fl_q[f])
            g.arr[q] = g.fl_delay[f]
            push_readers(q)

        for i in changed_gates:
            if i not in queued:
                queued.add(i)
                heapq.heappush(fwd_heap, (int(g.level[i]), i))
            # Reader-side delay changed: the required times of this
            # gate's fanin nets must be refreshed.
            bwd_seeds.update(int(n) for n in g.gate_fanins(i))

        # Forward wave: process strictly by level; the unchanged-value
        # cutoff stops expansion as soon as an arrival is bit-equal.
        while fwd_heap:
            L = fwd_heap[0][0]
            batch = []
            while fwd_heap and fwd_heap[0][0] == L:
                batch.append(heapq.heappop(fwd_heap)[1])
            new = g.recompute_arrivals(batch)
            for k, i in enumerate(batch):
                out = int(g.out[i])
                if new[k] != g.arr[out]:
                    g.arr[out] = new[k]
                    push_readers(out)

        # Backward wave: nets keyed by driver level, deepest first.
        net_level = np.full(len(g.net_names), -1, dtype=np.int64)
        has_drv = g.drv_gid >= 0
        net_level[has_drv] = g.level[g.drv_gid[has_drv]]
        bwd_heap = [(-int(net_level[n]), n) for n in bwd_seeds]
        heapq.heapify(bwd_heap)
        queued_b = set(bwd_seeds)
        while bwd_heap:
            _, nid = heapq.heappop(bwd_heap)
            new = g.recompute_required(nid)
            if new != g.req[nid]:
                g.req[nid] = new
                d = int(g.drv_gid[nid])
                if d >= 0:
                    for m in g.gate_fanins(d):
                        m = int(m)
                        if m not in queued_b:
                            queued_b.add(m)
                            heapq.heappush(
                                bwd_heap, (-int(net_level[m]), m))

        return IncrementalReport(g, nl, T)

    # ------------------------------------------------------------------

    def gate_delays_ps(self) -> dict:
        """Cached per-gate cell delay (comb gates), for consumers that
        annotate other graphs — e.g. the retiming abstraction."""
        report_needed = self._graph is None or self._pending
        if report_needed:
            self.update()
        g = self._graph
        return dict(zip(g.gate_names, g.cell_delay.tolist()))
