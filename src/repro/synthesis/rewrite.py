"""AIG optimization: balance, refactor, and cut-based rewriting.

These are the 2010s-generation optimizations that, stacked on top of
the classic two-level/multi-level passes, produce the decade-of-
improvement ladder of experiment E1.
"""

from __future__ import annotations

from repro.netlist.aig import (
    AIG_FALSE,
    AIG_TRUE,
    Aig,
    lit_is_neg,
    lit_not,
    lit_var,
)
from repro.netlist.boolfunc import TruthTable
from repro.synthesis.cuts import cut_function, enumerate_cuts
from repro.synthesis.division import factor, sop_from_cover
from repro.synthesis.espresso import espresso_tt


def balance(aig: Aig) -> Aig:
    """Depth-optimal restructuring of AND trees.

    Maximal conjunction trees (chains of ANDs linked by positive,
    single-fanout edges) are collected and rebuilt as balanced trees,
    pairing the shallowest operands first — the standard ``balance``
    pass.  Node count never increases; depth typically drops.
    """
    new = Aig(aig.num_inputs, list(aig.input_names))
    mapping: dict[int, int] = {0: AIG_FALSE}
    for i in range(aig.num_inputs):
        mapping[i + 1] = new.input_lit(i)
    fanout = aig.fanout_counts()

    def collect(lit: int, acc: list, root: bool) -> None:
        node = lit_var(lit)
        if (not lit_is_neg(lit) and aig.is_and(node)
                and (root or fanout[node] == 1)):
            f0, f1 = aig.fanins(node)
            collect(f0, acc, False)
            collect(f1, acc, False)
        else:
            acc.append(lit)

    def translate(lit: int) -> int:
        node = lit_var(lit)
        base = mapping[node]
        return lit_not(base) if lit_is_neg(lit) else base

    levels_new: dict[int, int] = {}

    def level_of(lit: int) -> int:
        return levels_new.get(lit_var(lit), 0)

    for n in range(aig.num_inputs + 1, aig.num_nodes):
        operands: list[int] = []
        collect(2 * n, operands, True)
        # Translate to new-graph literals and pair shallowest-first.
        ops = sorted((translate(o) for o in operands), key=level_of)
        while len(ops) > 1:
            a = ops.pop(0)
            b = ops.pop(0)
            lit = new.and_(a, b)
            levels_new[lit_var(lit)] = 1 + max(level_of(a), level_of(b))
            # Insert keeping the shallowest-first order.
            pos = 0
            while pos < len(ops) and level_of(ops[pos]) <= level_of(lit):
                pos += 1
            ops.insert(pos, lit)
        mapping[n] = ops[0]
    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(translate(lit), name)
    return new.cleanup()


def _build_factored(aig: Aig, tree, leaf_lits: list) -> int:
    """Instantiate a factored expression tree into ``aig``."""
    kind = tree[0]
    if kind == "const":
        return AIG_TRUE if tree[1] else AIG_FALSE
    if kind == "lit":
        _, name, phase = tree
        lit = leaf_lits[name]
        return lit if phase else lit_not(lit)
    if kind == "and":
        acc = AIG_TRUE
        for child in tree[1]:
            acc = aig.and_(acc, _build_factored(aig, child, leaf_lits))
        return acc
    if kind == "or":
        acc = AIG_FALSE
        for child in tree[1]:
            acc = aig.or_(acc, _build_factored(aig, child, leaf_lits))
        return acc
    raise ValueError(f"bad factor tree node {kind!r}")


def _resynthesize(tt: TruthTable, dest: Aig, leaf_lits: list) -> int:
    """Minimal-effort resynthesis of a small function into ``dest``."""
    if tt.is_contradiction():
        return AIG_FALSE
    if tt.is_tautology():
        return AIG_TRUE
    cover = espresso_tt(tt)
    sop = sop_from_cover(cover, list(range(tt.nvars)))
    tree = factor(sop)
    return _build_factored(dest, tree, leaf_lits)


def rewrite(aig: Aig, cut_size: int = 4, per_node: int = 5) -> Aig:
    """Cut-based rewriting.

    Rebuilds the graph bottom-up.  For every AND node the rewriter
    considers (a) the direct reconstruction and (b) a resynthesis of
    each enumerated cut's function (espresso + quick-factor), and keeps
    whichever adds the fewest nodes to the new graph — structural
    hashing makes reuse of existing logic free.  Dead alternatives are
    swept by the final cleanup.
    """
    cuts = enumerate_cuts(aig, cut_size, per_node)
    new = Aig(aig.num_inputs, list(aig.input_names))
    mapping: dict[int, int] = {0: AIG_FALSE}
    for i in range(aig.num_inputs):
        mapping[i + 1] = new.input_lit(i)

    for n in range(aig.num_inputs + 1, aig.num_nodes):
        f0, f1 = aig.fanins(n)
        a = mapping[lit_var(f0)] ^ (f0 & 1)
        b = mapping[lit_var(f1)] ^ (f1 & 1)
        before = new.num_nodes
        best_lit = new.and_(a, b)
        best_added = new.num_nodes - before
        for cut in cuts[n]:
            if len(cut) < 2 or cut == (n,):
                continue
            tt = cut_function(aig, n, cut)
            leaf_lits = [mapping[leaf] for leaf in cut]
            start = new.num_nodes
            cand = _resynthesize(tt, new, leaf_lits)
            added = new.num_nodes - start
            if added < best_added:
                best_lit, best_added = cand, added
        mapping[n] = best_lit
    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(mapping[lit_var(lit)] ^ (lit & 1), name)
    return new.cleanup()


def refactor(aig: Aig, max_support: int = 10) -> Aig:
    """Collapse-and-resynthesize outputs with small structural support.

    Each output cone whose support fits in ``max_support`` inputs is
    collapsed to a truth table, minimized, factored, and rebuilt; the
    new cone is kept only if the overall graph shrinks.
    """
    result = aig
    for out_idx in range(len(aig.outputs)):
        support = _output_support(result, out_idx)
        if not 1 <= len(support) <= max_support:
            continue
        candidate = _refactor_one(result, out_idx, support)
        if candidate.num_ands < result.num_ands:
            result = candidate
    return result


def _output_support(aig: Aig, out_idx: int) -> list:
    lit = aig.outputs[out_idx]
    seen = set()
    support = []
    stack = [lit_var(lit)]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if aig.is_input(node):
            support.append(node)
        elif aig.is_and(node):
            f0, f1 = aig.fanins(node)
            stack.append(lit_var(f0))
            stack.append(lit_var(f1))
    return sorted(support)


def _refactor_one(aig: Aig, out_idx: int, support: list) -> Aig:
    lit = aig.outputs[out_idx]
    tt = cut_function(aig, lit_var(lit), support)
    if lit_is_neg(lit):
        tt = ~tt
    new = Aig(aig.num_inputs, list(aig.input_names))
    mapping: dict[int, int] = {0: AIG_FALSE}
    for i in range(aig.num_inputs):
        mapping[i + 1] = new.input_lit(i)
    # Copy all other outputs' cones verbatim.
    for n in range(aig.num_inputs + 1, aig.num_nodes):
        f0, f1 = aig.fanins(n)
        a = mapping[lit_var(f0)] ^ (f0 & 1)
        b = mapping[lit_var(f1)] ^ (f1 & 1)
        mapping[n] = new.and_(a, b)
    leaf_lits = [mapping[leaf] for leaf in support]
    new_lit = _resynthesize(tt, new, leaf_lits)
    for k, (olit, name) in enumerate(zip(aig.outputs, aig.output_names)):
        if k == out_idx:
            new.add_output(new_lit, name)
        else:
            new.add_output(mapping[lit_var(olit)] ^ (olit & 1), name)
    return new.cleanup()


def optimize_aig(aig: Aig, effort: str = "high") -> Aig:
    """A standard optimization script over the AIG passes.

    effort "low": balance only.  "medium": balance, rewrite.  "high":
    two rounds of rewrite/refactor bracketed by balances (compare the
    ABC ``resyn2`` recipe).
    """
    if effort not in ("low", "medium", "high"):
        raise ValueError("effort must be low/medium/high")
    g = balance(aig)
    if effort == "low":
        return g
    g = rewrite(g)
    if effort == "medium":
        return balance(g)
    g = refactor(g)
    g = balance(g)
    g = rewrite(g)
    return balance(g)
