"""Cut-based technology mapping onto a standard-cell library.

Classic DP formulation: enumerate k-feasible cuts, match each cut's
function against library cells (inputs permuted, both output phases),
and choose per node the minimum-cost cover in ``area`` or ``delay``
mode.  Negations ride on inverters; structural sharing is preserved by
memoized instantiation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.netlist.aig import Aig, lit_is_neg, lit_var
from repro.netlist.cells import Cell, CellLibrary
from repro.netlist.circuit import Netlist
from repro.synthesis.cuts import cut_function, enumerate_cuts

_MAX_MATCH_INPUTS = 4


@dataclass
class _Match:
    cut: tuple
    cell: Cell
    perm: tuple          # perm[pin_index] = cut leaf position
    inverted: bool       # True if the cell computes the complement


@dataclass
class _BaseGate:
    """Fallback choice: a 2-input gate straight over the AIG fanins."""

    cell: Cell
    flip: bool           # True for OR/NOR (fanins read complemented)


class _Matcher:
    """Precomputed (arity, truth-bits) -> matches index for a library."""

    def __init__(self, library: CellLibrary, cell_filter=None):
        self.table: dict[tuple, list] = {}
        for cell in library.combinational():
            if cell_filter is not None and not cell_filter(cell):
                continue
            k = cell.num_inputs
            if k > _MAX_MATCH_INPUTS or cell.function is None:
                continue
            for perm in itertools.permutations(range(k)):
                permuted = cell.function.expand_vars(k, list(perm))
                self.table.setdefault((k, permuted.bits), []).append(
                    (cell, perm))

    def matches(self, bits: int, nvars: int) -> list:
        return self.table.get((nvars, bits), [])


def map_aig(aig: Aig, library: CellLibrary, mode: str = "area",
            cut_size: int = 4, per_node: int = 8,
            cell_filter=None) -> Netlist:
    """Map an AIG to a gate-level netlist.

    Parameters
    ----------
    aig:
        Subject graph.
    library:
        Target :class:`~repro.netlist.CellLibrary`.
    mode:
        ``"area"`` minimizes total cell area; ``"delay"`` minimizes the
        worst arrival time (with an estimated per-stage load), breaking
        ties on area.
    cell_filter:
        Optional predicate restricting usable cells (e.g. only X1 RVT
        for a "2006 era" flow).

    Returns
    -------
    A :class:`~repro.netlist.Netlist` computing the same functions.
    """
    if mode not in ("area", "delay"):
        raise ValueError("mode must be 'area' or 'delay'")
    matcher = _Matcher(library, cell_filter)
    inv_cell = _pick_inverter(library, cell_filter)
    est_load_ff = 2.0 * inv_cell.input_cap_ff
    cuts = enumerate_cuts(aig, cut_size, per_node)

    # DP over both polarities.  cost[phase][node] = (metric, area).
    INF = (float("inf"), float("inf"))
    pos_cost: dict[int, tuple] = {0: INF}
    neg_cost: dict[int, tuple] = {0: INF}
    pos_choice: dict[int, object] = {}
    neg_choice: dict[int, object] = {}
    for i in range(1, aig.num_inputs + 1):
        pos_cost[i] = (0.0, 0.0)
        neg_cost[i] = _add_inverter((0.0, 0.0), inv_cell, est_load_ff, mode)
        neg_choice[i] = "inv"

    # Fallback two-input gates guarantee every AND node is coverable
    # even when no larger cut matches (e.g. mixed-phase fanins).
    base_gates = {
        name: _cheapest_function(library, bits, cell_filter)
        for name, bits in (("and", 0b1000), ("nand", 0b0111),
                           ("or", 0b1110), ("nor", 0b0001))
    }

    for n in range(aig.num_inputs + 1, aig.num_nodes):
        best_pos, best_pos_choice = INF, None
        best_neg, best_neg_choice = INF, None
        f0, f1 = aig.fanins(n)
        for kind, cell in base_gates.items():
            if cell is None:
                continue
            # AND/NAND read the fanins in their natural phase; OR/NOR
            # read them complemented (De Morgan).
            flip = kind in ("or", "nor")
            costs = []
            for f in (f0, f1):
                v, neg = lit_var(f), lit_is_neg(f) ^ flip
                costs.append(neg_cost[v] if neg else pos_cost[v])
            total = _add_cell(_combine(costs, mode), cell, est_load_ff,
                              mode)
            choice = _BaseGate(cell, flip)
            if kind in ("and", "nor"):
                if total < best_pos:
                    best_pos, best_pos_choice = total, choice
            else:
                if total < best_neg:
                    best_neg, best_neg_choice = total, choice
        for cut in cuts[n]:
            if cut == (n,):
                continue
            if any(leaf != 0 and leaf not in pos_cost for leaf in cut):
                continue
            tt = cut_function(aig, n, cut)
            leaves_cost = _combine(
                [pos_cost[leaf] for leaf in cut if leaf != 0], mode)
            for bits, inverted in ((tt.bits, False), ((~tt).bits, True)):
                for cell, perm in matcher.matches(bits, len(cut)):
                    cost = _add_cell(leaves_cost, cell, est_load_ff, mode)
                    match = _Match(cut, cell, perm, inverted)
                    if inverted:
                        if cost < best_neg:
                            best_neg, best_neg_choice = cost, match
                    else:
                        if cost < best_pos:
                            best_pos, best_pos_choice = cost, match
        # Close the polarity pair with inverters.
        via_inv_pos = _add_inverter(best_neg, inv_cell, est_load_ff, mode)
        via_inv_neg = _add_inverter(best_pos, inv_cell, est_load_ff, mode)
        if via_inv_pos < best_pos:
            best_pos, best_pos_choice = via_inv_pos, "inv"
        if via_inv_neg < best_neg:
            best_neg, best_neg_choice = via_inv_neg, "inv"
        if best_pos_choice is None and best_neg_choice is None:
            raise RuntimeError(
                f"no match for node {n}; library too sparse")
        pos_cost[n], pos_choice[n] = best_pos, best_pos_choice
        neg_cost[n], neg_choice[n] = best_neg, best_neg_choice

    # ------------------------------------------------------------------
    # Instantiate the chosen cover.
    # ------------------------------------------------------------------
    nl = Netlist(f"mapped_{mode}", library)
    net_of: dict[tuple, str] = {}
    for i, name in enumerate(aig.input_names):
        net_of[(i + 1, False)] = nl.add_input(name)

    def instantiate(node: int, negated: bool) -> str:
        key = (node, negated)
        if key in net_of:
            return net_of[key]
        choice = (neg_choice if negated else pos_choice)[node]
        if choice == "inv":
            src = instantiate(node, not negated)
            gate = nl.add_gate(inv_cell, [src])
            net_of[key] = gate.output
            return gate.output
        if isinstance(choice, _BaseGate):
            nets = []
            for f in aig.fanins(node):
                v, neg = lit_var(f), lit_is_neg(f) ^ choice.flip
                nets.append(instantiate(v, neg))
            gate = nl.add_gate(choice.cell, nets)
            net_of[key] = gate.output
            return gate.output
        match: _Match = choice
        leaf_nets = {leaf: instantiate(leaf, False) for leaf in match.cut}
        # perm[pin] = leaf position: connect each cell pin accordingly.
        conns = {}
        for pin_idx, pin in enumerate(match.cell.inputs):
            conns[pin] = leaf_nets[match.cut[match.perm[pin_idx]]]
        gate = nl.add_gate(match.cell, conns)
        net_of[key] = gate.output
        return gate.output

    def const_net(value: bool) -> str:
        key = (0, value)
        if key not in net_of:
            tie = library.cells.get("TIEHI" if value else "TIELO")
            if tie is None:
                raise ValueError("constant output needs TIEHI/TIELO cells")
            net_of[key] = nl.add_gate(tie, {}).output
        return net_of[key]

    for lit, name in zip(aig.outputs, aig.output_names):
        node = lit_var(lit)
        if node == 0:
            nl.add_output(const_net(lit_is_neg(lit)))
            continue
        net = instantiate(node, lit_is_neg(lit))
        nl.add_output(net)
    return nl


def _cheapest_function(library: CellLibrary, bits: int, cell_filter):
    """Smallest usable 2-input cell computing the given truth bits."""
    candidates = [
        c for c in library.combinational()
        if c.num_inputs == 2 and c.function is not None
        and c.function.bits == bits
        and (cell_filter is None or cell_filter(c))
    ]
    return min(candidates, key=lambda c: c.area_um2) if candidates else None


def _pick_inverter(library: CellLibrary, cell_filter) -> Cell:
    candidates = [
        c for c in library.combinational()
        if c.num_inputs == 1 and c.function is not None
        and c.function.bits == 0b01
        and (cell_filter is None or cell_filter(c))
    ]
    if not candidates:
        raise ValueError("library has no usable inverter")
    return min(candidates, key=lambda c: c.area_um2)


def _combine(costs: list, mode: str) -> tuple:
    if not costs:
        return (0.0, 0.0)
    if mode == "area":
        return (sum(c[0] for c in costs), sum(c[1] for c in costs))
    return (max(c[0] for c in costs), sum(c[1] for c in costs))


def _add_cell(base: tuple, cell: Cell, load_ff: float, mode: str) -> tuple:
    if mode == "area":
        return (base[0] + cell.area_um2, base[1] + cell.area_um2)
    return (base[0] + cell.delay_ps(load_ff), base[1] + cell.area_um2)


def _add_inverter(base: tuple, inv: Cell, load_ff: float,
                  mode: str) -> tuple:
    if base[0] == float("inf"):
        return base
    return _add_cell(base, inv, load_ff, mode)


def trivial_map(aig: Aig, library: CellLibrary) -> Netlist:
    """Naive 1-to-1 mapping: one AND2 per node, INVs on negated edges.

    The "no optimization" strawman baseline of the era comparisons.
    """
    nl = Netlist("trivial", library)
    and2 = library.cheapest("AND2")
    inv = library.cheapest("INV")
    net_of: dict[tuple, str] = {}
    for i, name in enumerate(aig.input_names):
        net_of[(i + 1, False)] = nl.add_input(name)

    def net_for(lit: int) -> str:
        node = lit_var(lit)
        neg = lit_is_neg(lit)
        key = (node, neg)
        if key in net_of:
            return net_of[key]
        if neg:
            src = net_for(2 * node)
            gate = nl.add_gate(inv, [src])
            net_of[key] = gate.output
            return gate.output
        f0, f1 = aig.fanins(node)
        gate = nl.add_gate(and2, [net_for(f0), net_for(f1)])
        net_of[key] = gate.output
        return gate.output

    for lit, name in zip(aig.outputs, aig.output_names):
        if lit_var(lit) == 0:
            raise ValueError("trivial_map cannot express constant outputs")
        if aig.is_input(lit_var(lit)) or aig.is_and(lit_var(lit)):
            nl.add_output(net_for(lit))
    return nl
