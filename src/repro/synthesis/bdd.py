"""Reduced Ordered Binary Decision Diagrams and equivalence checking.

The panel's methodology claims lean on verification: power intent
"correctly implemented and consistently verified" (Domic), smart-system
methodology "reliable and repeatable" (Macii).  The BDD is the
canonical-form engine that makes combinational equivalence checking a
constant-time comparison — used here to formally verify that every
synthesis/mapping pipeline in the suite preserves its input.
"""

from __future__ import annotations

from repro.netlist.circuit import Netlist

#: Terminal node ids.
BDD_FALSE = 0
BDD_TRUE = 1


class BddManager:
    """A shared ROBDD store with an ITE cache.

    Nodes are integers; ``(var, low, high)`` triples are hash-consed so
    equivalent functions share one node — equality of functions is
    equality of node ids.
    """

    def __init__(self, num_vars: int, var_names=None):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.var_names = list(var_names or
                              [f"x{k}" for k in range(num_vars)])
        if len(self.var_names) != num_vars:
            raise ValueError("var_names length mismatch")
        # node id -> (var, low, high); terminals use var = num_vars.
        self._nodes: list = [(num_vars, 0, 0), (num_vars, 1, 1)]
        self._unique: dict = {}
        self._ite_cache: dict = {}

    # ------------------------------------------------------------------

    def var(self, index: int) -> int:
        """The BDD of input variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError("variable index out of range")
        return self._mk(index, BDD_FALSE, BDD_TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _top_var(self, *nodes) -> int:
        return min(self._nodes[n][0] for n in nodes)

    def _cofactor(self, node: int, var: int, value: bool) -> int:
        nvar, low, high = self._nodes[node]
        if nvar != var:
            return node
        return high if value else low

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the universal BDD operation."""
        if f == BDD_TRUE:
            return g
        if f == BDD_FALSE:
            return h
        if g == h:
            return g
        if g == BDD_TRUE and h == BDD_FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = self._top_var(f, g, h)
        lo = self.ite(self._cofactor(f, var, False),
                      self._cofactor(g, var, False),
                      self._cofactor(h, var, False))
        hi = self.ite(self._cofactor(f, var, True),
                      self._cofactor(g, var, True),
                      self._cofactor(h, var, True))
        result = self._mk(var, lo, hi)
        self._ite_cache[key] = result
        return result

    # Boolean connectives ------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        return self.ite(a, b, BDD_FALSE)

    def or_(self, a: int, b: int) -> int:
        return self.ite(a, BDD_TRUE, b)

    def not_(self, a: int) -> int:
        return self.ite(a, BDD_FALSE, BDD_TRUE)

    def xor_(self, a: int, b: int) -> int:
        return self.ite(a, self.not_(b), b)

    def apply_table(self, tt, operand_nodes: list) -> int:
        """Apply a small truth table (a cell function) to BDD operands."""
        if tt is None:
            raise ValueError("sequential cells have no truth table")
        result = BDD_FALSE
        for m in range(1 << tt.nvars):
            if not (tt.bits >> m & 1):
                continue
            cube = BDD_TRUE
            for bit, operand in enumerate(operand_nodes):
                lit = operand if (m >> bit & 1) else self.not_(operand)
                cube = self.and_(cube, lit)
            result = self.or_(result, cube)
        return result

    # Queries ------------------------------------------------------------

    def evaluate(self, node: int, assignment: dict) -> bool:
        """Evaluate under var index -> bool."""
        while node not in (BDD_FALSE, BDD_TRUE):
            var, low, high = self._nodes[node]
            node = high if assignment[var] else low
        return node == BDD_TRUE

    def sat_count(self, node: int) -> int:
        """Number of satisfying assignments over all variables."""
        cache: dict = {}

        def count(n: int, from_level: int) -> int:
            var = self._nodes[n][0]
            if n == BDD_FALSE:
                return 0
            if n == BDD_TRUE:
                return 1 << (self.num_vars - from_level)
            key = (n, from_level)
            if key in cache:
                return cache[key]
            _, low, high = self._nodes[n]
            gap = var - from_level
            total = (count(low, var + 1) + count(high, var + 1)) << gap
            cache[key] = total
            return total

        return count(node, 0)

    def any_sat(self, node: int):
        """One satisfying assignment (var -> bool), or None."""
        if node == BDD_FALSE:
            return None
        assignment = {}
        while node != BDD_TRUE:
            var, low, high = self._nodes[node]
            if high != BDD_FALSE:
                assignment[var] = True
                node = high
            else:
                assignment[var] = False
                node = low
        return assignment

    def size(self, node: int) -> int:
        """Number of internal nodes in a function's DAG."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in (BDD_FALSE, BDD_TRUE) or n in seen:
                continue
            seen.add(n)
            _, low, high = self._nodes[n]
            stack.extend((low, high))
        return len(seen)


def netlist_bdds(netlist: Netlist, manager: BddManager | None = None):
    """Build output BDDs of a combinational netlist.

    Returns ``(manager, {output_net: bdd_node})``.  Flop outputs are
    treated as extra free variables (combinational equivalence over one
    cycle).
    """
    flops = netlist.sequential_gates()
    inputs = list(netlist.primary_inputs) + [g.output for g in flops]
    if manager is None:
        manager = BddManager(len(inputs), inputs)
    elif manager.var_names != inputs:
        raise ValueError("manager variable order mismatch")
    values = {net: manager.var(i) for i, net in enumerate(inputs)}
    for gate in netlist.topological_gates():
        operands = [values[gate.pins[p]] for p in gate.cell.inputs]
        values[gate.output] = manager.apply_table(gate.cell.function,
                                                  operands)
    return manager, {po: values[po] for po in netlist.primary_outputs}


def check_equivalence(a: Netlist, b: Netlist) -> dict:
    """Formal combinational equivalence check of two netlists.

    Requires identical primary input/output interfaces.  Returns a
    report with per-output verdicts and, for the first miscompare, a
    counterexample input assignment.
    """
    if a.primary_inputs != b.primary_inputs:
        raise ValueError("primary input interfaces differ")
    if len(a.primary_outputs) != len(b.primary_outputs):
        raise ValueError("primary output counts differ")
    if a.sequential_gates() or b.sequential_gates():
        raise ValueError("combinational check only; cut the flops first")
    manager, bdds_a = netlist_bdds(a)
    _, bdds_b = netlist_bdds(b, manager)
    per_output = {}
    counterexample = None
    for pa, pb in zip(a.primary_outputs, b.primary_outputs):
        same = bdds_a[pa] == bdds_b[pb]
        per_output[pa] = same
        if not same and counterexample is None:
            diff = manager.xor_(bdds_a[pa], bdds_b[pb])
            sat = manager.any_sat(diff)
            counterexample = {
                manager.var_names[v]: val for v, val in sat.items()
            }
    return {
        "equivalent": all(per_output.values()),
        "per_output": per_output,
        "counterexample": counterexample,
    }
