"""Post-mapping gate sizing and multi-Vt assignment.

Two of the "wide catalogue of techniques" (Domic) that advanced flows
apply automatically: upsizing drive strength along critical paths and
swapping slack-rich gates to high-Vt variants to cut leakage.

Both loops evaluate one trial resize per inner step, so they are the
hottest consumers of STA in the flow.  By default they drive the
:class:`~repro.timing.IncrementalTimingAnalyzer`: every trial is a
journaled :meth:`~repro.netlist.Netlist.resize_gate` followed by a
cone-limited ``update()`` instead of a whole-design re-analysis.  Pass
``incremental=False`` to fall back to a full scalar STA per trial (the
pre-incremental behavior; the results are bit-identical either way,
which ``benchmarks/bench_perf.py`` asserts).

Flows select between the two through :mod:`repro.engines` — stage
``"sizing"``, engines ``"incremental"`` and ``"scalar"`` — via
``FlowOptions.sizing_engine`` rather than calling this module
directly.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist
from repro.timing import IncrementalTimingAnalyzer, TimingAnalyzer, WireModel

_DRIVE_LADDER = ["X1", "X2", "X4"]
_NAME_RE = re.compile(r"^(?P<base>[A-Z0-9]+)_(?P<drive>X\d)_(?P<vt>[a-z]+)$")


def _variant(library: CellLibrary, cell_name: str, *,
             drive: str | None = None,
             vt: str | None = None) -> Any:
    """Look up a sibling cell with a different drive or Vt, or None."""
    m = _NAME_RE.match(cell_name)
    if not m:
        return None
    name = (f"{m.group('base')}_{drive or m.group('drive')}"
            f"_{vt or m.group('vt')}")
    return library.cells.get(name)


def _make_analyzer(
    netlist: Netlist, wire_model: WireModel | None,
    clock_period_ps: float, incremental: bool,
) -> tuple[Any, Callable[[], Any], Callable[[], Any]]:
    """(analyzer, evaluate, close): ``evaluate()`` returns a report for
    the netlist's current state — a cone update in incremental mode, a
    full scalar re-analysis otherwise."""
    if incremental:
        analyzer = IncrementalTimingAnalyzer(
            netlist, wire_model, clock_period_ps)
        return analyzer, analyzer.update, analyzer.close
    analyzer = TimingAnalyzer(netlist, wire_model, clock_period_ps)
    return analyzer, analyzer.analyze, lambda: None


def size_gates(netlist: Netlist, *, wire_model: WireModel | None = None,
               clock_period_ps: float = 1000.0,
               max_passes: int = 4,
               incremental: bool = True) -> dict[str, float]:
    """Upsize cells along critical paths until timing stops improving.

    Mutates the netlist in place.  Returns a report with before/after
    critical delay and the number of cells resized.
    """
    library = netlist.library
    analyzer, evaluate, close = _make_analyzer(
        netlist, wire_model, clock_period_ps, incremental)
    try:
        initial = analyzer.analyze()
        before_ps = initial.critical_delay_ps
        resized = 0
        best_ps = before_ps
        for _ in range(max_passes):
            report = evaluate()
            if report.wns_ps >= 0:
                break  # timing met: don't spend area on unneeded speed
            improved = False
            for gname in report.critical_path:
                gate = netlist.gates.get(gname)
                if gate is None or gate.cell.is_sequential:
                    continue
                m = _NAME_RE.match(gate.cell.name)
                if not m:
                    continue
                drive = m.group("drive")
                idx = (_DRIVE_LADDER.index(drive)
                       if drive in _DRIVE_LADDER else -1)
                if idx < 0 or idx + 1 >= len(_DRIVE_LADDER):
                    continue
                bigger = _variant(library, gate.cell.name,
                                  drive=_DRIVE_LADDER[idx + 1])
                if bigger is None:
                    continue
                old_cell = gate.cell
                netlist.resize_gate(gname, bigger)
                new_ps = evaluate().critical_delay_ps
                if new_ps < best_ps - 1e-9:
                    best_ps = new_ps
                    resized += 1
                    improved = True
                else:
                    netlist.resize_gate(gname, old_cell)
            if not improved:
                break
    finally:
        close()
    return {
        "before_ps": before_ps,
        "after_ps": best_ps,
        "resized": resized,
    }


def assign_vt(netlist: Netlist, *, wire_model: WireModel | None = None,
              clock_period_ps: float = 1000.0,
              slack_margin_ps: float = 0.0,
              incremental: bool = True) -> dict[str, float]:
    """Swap slack-rich gates to HVT (leakage recovery).

    A gate is swapped when its output slack stays positive by
    ``slack_margin_ps`` after accounting for the HVT slowdown estimate.
    Gates that end up on negative slack after a swap are reverted in a
    final repair pass.  Returns leakage before/after and swap count.
    """
    library = netlist.library
    if not any(c.vt_flavor == "hvt" for c in library):
        raise ValueError("library has no HVT flavor; build with "
                         "vt_flavors=('rvt', 'hvt')")
    analyzer, evaluate, close = _make_analyzer(
        netlist, wire_model, clock_period_ps, incremental)
    try:
        report = analyzer.analyze()
        leak_before = netlist.leakage_nw()
        swapped: list[Any] = []
        for gate in sorted(netlist.combinational_gates(),
                           key=lambda g: -g.cell.leak_nw):
            slack = report.slack_ps(gate.output)
            hvt = _variant(library, gate.cell.name, vt="hvt")
            if hvt is None or hvt is gate.cell:
                continue
            slowdown = hvt.intrinsic_ps - gate.cell.intrinsic_ps
            if slack - slowdown * 2.0 <= slack_margin_ps:
                continue
            netlist.resize_gate(gate.name, hvt)
            swapped.append(gate)
        # Repair: revert swaps if the design went negative.
        repair_passes = 0
        while swapped and repair_passes < 10:
            report = evaluate()
            if report.wns_ps >= 0:
                break
            worst = min(swapped,
                        key=lambda g: report.slack_ps(g.output))
            rvt = _variant(library, worst.cell.name, vt="rvt")
            if rvt is not None:
                netlist.resize_gate(worst.name, rvt)
            swapped.remove(worst)
            repair_passes += 1
    finally:
        close()
    return {
        "leak_before_nw": leak_before,
        "leak_after_nw": netlist.leakage_nw(),
        "swapped": len(swapped),
    }
