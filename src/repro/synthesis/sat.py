"""A small CNF SAT solver and SAT-based equivalence checking.

The second pillar of verification (BDDs being the first): Tseitin-
encode a miter between two netlists and ask the solver for a
distinguishing input.  DPLL with unit propagation, two-phase literal
watching would be overkill at this scale; conflict-driven clause
learning is included in a simple form because it is what makes even
medium miters tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Netlist


@dataclass
class Cnf:
    """A CNF formula: clauses of nonzero integer literals (DIMACS)."""

    num_vars: int = 0
    clauses: list = field(default_factory=list)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, *lits) -> None:
        clause = [int(l) for l in lits]
        if not clause:
            raise ValueError("empty clause (formula trivially unsat)")
        if any(l == 0 or abs(l) > self.num_vars for l in clause):
            raise ValueError("literal out of range")
        self.clauses.append(clause)


class SatSolver:
    """DPLL + unit propagation + 1-UIP-style conflict clauses."""

    def __init__(self, cnf: Cnf, *, max_conflicts: int = 200_000):
        self.cnf = cnf
        self.max_conflicts = max_conflicts

    def solve(self):
        """Returns var -> bool model, or None if UNSAT."""
        assign: dict = {}
        trail: list = []          # (var, decision_level, reason_clause)
        level = 0
        conflicts = 0

        clauses = [list(c) for c in self.cnf.clauses]

        def value(lit):
            v = assign.get(abs(lit))
            if v is None:
                return None
            return v if lit > 0 else not v

        def propagate():
            """Unit propagation; returns a conflicting clause or None."""
            changed = True
            while changed:
                changed = False
                for clause in clauses:
                    unassigned = None
                    satisfied = False
                    count = 0
                    for lit in clause:
                        val = value(lit)
                        if val is True:
                            satisfied = True
                            break
                        if val is None:
                            unassigned = lit
                            count += 1
                    if satisfied:
                        continue
                    if count == 0:
                        return clause
                    if count == 1:
                        var = abs(unassigned)
                        assign[var] = unassigned > 0
                        trail.append((var, level, clause))
                        changed = True
            return None

        def backtrack(target_level):
            while trail and trail[-1][1] > target_level:
                var, _, _ = trail.pop()
                del assign[var]

        def analyze(conflict_clause):
            """Simple conflict analysis: collect decision literals."""
            seen = set()
            learned = []
            stack = list(conflict_clause)
            visited = set()
            while stack:
                lit = stack.pop()
                var = abs(lit)
                if var in visited:
                    continue
                visited.add(var)
                entry = next((t for t in trail if t[0] == var), None)
                if entry is None:
                    continue
                _, lvl, reason = entry
                if reason is None:
                    # Decision variable: negate it in the learned clause.
                    learned.append(-lit if value(lit) is True else
                                   (lit if value(lit) is False else -lit))
                    seen.add(lvl)
                else:
                    stack.extend(l for l in reason if abs(l) != var)
            if not learned:
                return None, -1
            back = max((l for l in seen if l < max(seen)), default=0) \
                if len(seen) > 1 else 0
            return learned, back

        while True:
            conflict = propagate()
            if conflict is not None:
                conflicts += 1
                if conflicts > self.max_conflicts:
                    raise RuntimeError("conflict budget exhausted")
                if level == 0:
                    return None
                learned, back = analyze(conflict)
                if learned is None or back < 0:
                    # Fall back to chronological backtracking.
                    back = level - 1
                else:
                    clauses.append(learned)
                backtrack(back)
                level = back
                continue
            # Pick a branching variable.
            free = None
            for v in range(1, self.cnf.num_vars + 1):
                if v not in assign:
                    free = v
                    break
            if free is None:
                return dict(assign)
            level += 1
            assign[free] = False
            trail.append((free, level, None))


def tseitin_netlist(netlist: Netlist, cnf: Cnf,
                    input_vars: dict | None = None) -> dict:
    """Tseitin-encode a combinational netlist into ``cnf``.

    Returns net -> CNF variable.  ``input_vars`` may share input
    variables between two encodings (the miter construction).
    """
    if netlist.sequential_gates():
        raise ValueError("combinational netlists only")
    var_of: dict = {}
    for pi in netlist.primary_inputs:
        if input_vars and pi in input_vars:
            var_of[pi] = input_vars[pi]
        else:
            var_of[pi] = cnf.new_var()
    for gate in netlist.topological_gates():
        out = cnf.new_var()
        var_of[gate.output] = out
        ins = [var_of[gate.pins[p]] for p in gate.cell.inputs]
        tt = gate.cell.function
        # Clause per minterm row: encode out <-> f(ins).
        for m in range(1 << tt.nvars):
            row = []
            for bit, v in enumerate(ins):
                row.append(-v if (m >> bit) & 1 else v)
            if tt.bits >> m & 1:
                cnf.add_clause(*row, out)
            else:
                cnf.add_clause(*row, -out)
        if tt.nvars == 0:
            # Tie cell: fixed output value.
            cnf.add_clause(out if tt.bits & 1 else -out)
    return var_of


def sat_check_equivalence(a: Netlist, b: Netlist) -> dict:
    """Miter-based equivalence check.

    Shares input variables, XORs each output pair, and asks SAT for an
    input making any XOR true.  Returns the same report shape as the
    BDD checker.
    """
    if a.primary_inputs != b.primary_inputs:
        raise ValueError("primary input interfaces differ")
    if len(a.primary_outputs) != len(b.primary_outputs):
        raise ValueError("primary output counts differ")
    cnf = Cnf()
    vars_a = tseitin_netlist(a, cnf)
    shared = {pi: vars_a[pi] for pi in a.primary_inputs}
    vars_b = tseitin_netlist(b, cnf, input_vars=shared)
    xor_vars = []
    for pa, pb in zip(a.primary_outputs, b.primary_outputs):
        x = cnf.new_var()
        va, vb = vars_a[pa], vars_b[pb]
        # x <-> va xor vb.
        cnf.add_clause(-x, va, vb)
        cnf.add_clause(-x, -va, -vb)
        cnf.add_clause(x, -va, vb)
        cnf.add_clause(x, va, -vb)
        xor_vars.append(x)
    cnf.add_clause(*xor_vars)  # some output differs
    model = SatSolver(cnf).solve()
    if model is None:
        return {"equivalent": True, "counterexample": None}
    cex = {pi: model.get(shared[pi], False)
           for pi in a.primary_inputs}
    return {"equivalent": False, "counterexample": cex}
