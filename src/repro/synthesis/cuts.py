"""K-feasible cut enumeration and cut functions on AIGs.

Shared by the rewriter (4-cuts resynthesized locally) and the
technology mapper (cuts matched against library cells).
"""

from __future__ import annotations

from repro.netlist.aig import Aig, lit_is_neg, lit_var
from repro.netlist.boolfunc import TruthTable


def enumerate_cuts(aig: Aig, k: int = 4, per_node: int = 8) -> dict:
    """All k-feasible cuts per node.

    Returns node -> list of cuts; each cut is a sorted tuple of leaf
    node ids.  The trivial cut ``(node,)`` is always included.  At most
    ``per_node`` non-trivial cuts are kept per node (smallest first),
    the standard priority-cut pruning.
    """
    if k < 2:
        raise ValueError("cut size must be >= 2")
    cuts: dict[int, list] = {0: [(0,)]}
    for i in range(1, aig.num_inputs + 1):
        cuts[i] = [(i,)]
    for n in range(aig.num_inputs + 1, aig.num_nodes):
        f0, f1 = aig.fanins(n)
        merged = set()
        for c0 in cuts[lit_var(f0)]:
            for c1 in cuts[lit_var(f1)]:
                u = tuple(sorted(set(c0) | set(c1)))
                if len(u) <= k:
                    merged.add(u)
        # Drop dominated cuts (supersets of another cut).
        pruned = []
        for c in sorted(merged, key=len):
            if not any(set(p) <= set(c) for p in pruned):
                pruned.append(c)
        cuts[n] = pruned[:per_node] + [(n,)]
    return cuts


def cut_function(aig: Aig, root: int, leaves) -> TruthTable:
    """Truth table of ``root``'s function over the cut ``leaves``.

    The table is over ``len(leaves)`` variables in leaf order.  Edge
    complementations inside the cone are folded into the table.
    """
    leaves = tuple(leaves)
    index = {leaf: i for i, leaf in enumerate(leaves)}
    nvars = len(leaves)
    memo: dict[int, TruthTable] = {}

    def node_tt(node: int) -> TruthTable:
        if node in index:
            return TruthTable.var(index[node], nvars)
        if node == 0:
            return TruthTable.const(False, nvars)
        got = memo.get(node)
        if got is not None:
            return got
        if not aig.is_and(node):
            raise ValueError(
                f"node {node} (an input) is outside the cut {leaves}")
        f0, f1 = aig.fanins(node)
        t0 = node_tt(lit_var(f0))
        if lit_is_neg(f0):
            t0 = ~t0
        t1 = node_tt(lit_var(f1))
        if lit_is_neg(f1):
            t1 = ~t1
        result = t0 & t1
        memo[node] = result
        return result

    return node_tt(root)


def cut_volume(aig: Aig, root: int, leaves) -> int:
    """Number of AND nodes strictly inside the cut cone."""
    leaves = set(leaves)
    seen = set()
    stack = [root]
    while stack:
        n = stack.pop()
        if n in seen or n in leaves or not aig.is_and(n):
            continue
        seen.add(n)
        f0, f1 = aig.fanins(n)
        stack.append(lit_var(f0))
        stack.append(lit_var(f1))
    return len(seen)
