"""Two-level minimization: the EXPAND / IRREDUNDANT / REDUCE loop.

A faithful (single-output) implementation of the Espresso heuristic
loop.  Correctness is guaranteed by construction: every step preserves
``on_set <= cover <= on_set + dc_set``, verified by the property tests.

The containment oracles use the unate-recursive paradigm
(:func:`repro.netlist.cubes.cover_covers_cube`), exactly as in the
original — no truth-table shortcuts in the inner loop.
"""

from __future__ import annotations

from repro.netlist.boolfunc import TruthTable
from repro.netlist.cubes import ABSENT, Cover, Cube, cover_covers_cube


def espresso(on_set: Cover, dc_set: Cover | None = None,
             max_loops: int = 8) -> Cover:
    """Minimize a cover heuristically.

    Parameters
    ----------
    on_set:
        Cover of the required minterms.
    dc_set:
        Optional cover of don't-care minterms (may overlap the on-set).
    max_loops:
        Safety bound on EXPAND/IRREDUNDANT/REDUCE iterations; the loop
        exits as soon as a full pass stops improving the literal count.

    Returns
    -------
    A cover ``F`` with ``on_set <= F <= on_set + dc_set`` and (locally)
    minimal cube and literal counts.
    """
    nvars = on_set.nvars
    if dc_set is None:
        dc_set = Cover.empty(nvars)
    if dc_set.nvars != nvars:
        raise ValueError("on/dc arity mismatch")
    cover = on_set.deduplicate()
    if not cover.cubes:
        return cover
    care = Cover(on_set.cubes + dc_set.cubes, nvars)

    best = cover
    best_cost = _cost(best)
    for _ in range(max_loops):
        cover = _expand(cover, care)
        cover = _irredundant(cover, on_set, dc_set)
        cost = _cost(cover)
        if cost < best_cost:
            best, best_cost = cover, cost
        else:
            break
        cover = _reduce(cover, dc_set)
    return best


def espresso_tt(tt: TruthTable, dc: TruthTable | None = None) -> Cover:
    """Minimize a truth table; convenience wrapper for small functions."""
    on = Cover.from_truth_table(tt)
    dcs = Cover.from_truth_table(dc) if dc is not None else None
    return espresso(on, dcs)


def _cost(cover: Cover) -> tuple:
    return (cover.cube_count(), cover.literal_count())


def _expand(cover: Cover, care: Cover) -> Cover:
    """Raise each cube maximally while staying inside the care set.

    Cubes are processed largest-first; literals are dropped greedily in
    a fixed variable order (Espresso uses a weighting heuristic; the
    fixed order keeps the implementation deterministic and is close in
    quality on the node sizes we see).  Cubes contained in an already
    expanded prime are dropped on the fly.
    """
    ordered = sorted(
        cover.cubes,
        key=lambda c: (-sum(1 for v in c.literals if v == ABSENT),
                       c.literals))
    primes: list[Cube] = []
    for cube in ordered:
        if any(p.covers(cube) for p in primes):
            continue
        expanded = cube
        for var in range(cover.nvars):
            if expanded.literals[var] == ABSENT:
                continue
            candidate = expanded.expand_var(var)
            if cover_covers_cube(care, candidate):
                expanded = candidate
        primes.append(expanded)
    return Cover(primes, cover.nvars)


def _irredundant(cover: Cover, on_set: Cover, dc_set: Cover) -> Cover:
    """Drop cubes covered by the rest of the cover plus the don't-cares.

    Tries to drop the *largest-cost last* (smallest cubes first) so the
    survivors are the big primes.
    """
    cubes = sorted(
        cover.cubes,
        key=lambda c: (sum(1 for v in c.literals if v == ABSENT),
                       c.literals))
    kept = list(cubes)
    for cube in cubes:
        others = [c for c in kept if c != cube]
        rest = Cover(others + dc_set.cubes, cover.nvars)
        if cover_covers_cube(rest, cube):
            kept = others
    return Cover(kept, cover.nvars)


def _reduce(cover: Cover, dc_set: Cover) -> Cover:
    """Shrink each cube to the supercube of its essential minterms.

    A cube's essential minterms are those covered by no other cube of
    the (current) cover and not don't-care.  Reducing pulls cubes off
    their local optimum so the next EXPAND can escape it.
    """
    out: list[Cube] = []
    current = list(cover.cubes)
    for i, cube in enumerate(current):
        # Sequential REDUCE: earlier cubes participate in their already
        # reduced form, later ones unreduced — never both, or minterms
        # handed off to a cube that subsequently shrinks get lost.
        others = Cover(out + current[i + 1:] + dc_set.cubes,
                       cover.nvars)
        essential = [m for m in cube.minterms()
                     if not others.evaluate(m)]
        if not essential:
            continue  # fully redundant; drop
        out.append(_supercube(essential, cover.nvars))
    return Cover(out, cover.nvars) if out else cover


def _supercube(minterms: list, nvars: int) -> Cube:
    """Smallest cube containing all given minterms."""
    lits = list(Cube.from_minterm(minterms[0], nvars).literals)
    for m in minterms[1:]:
        for var in range(nvars):
            bit = (m >> var) & 1
            if lits[var] != ABSENT and lits[var] != bit:
                lits[var] = ABSENT
    return Cube(tuple(lits))


def exact_cover_size_lower_bound(on_set: Cover) -> int:
    """A cheap lower bound on the number of cubes any cover needs.

    Counts a maximal independent set of pairwise-disjoint on-set cubes;
    used by tests to sanity-check espresso's results.
    """
    chosen: list[Cube] = []
    for cube in sorted(on_set.cubes, key=lambda c: -c.literal_count()):
        if all(cube.intersect(c) is None for c in chosen):
            chosen.append(cube)
    return len(chosen)
