"""Era-calibrated synthesis flows.

Experiment E1 (Domic): "in the last ten years, we have improved advanced
RTL synthesis results by 30% in terms of area — incidentally, we have
also improved performance, and power by approximately the same amount."

The 2006-era flow is the first EDA generation: two-level cleanup and a
straightforward structural mapping at a single drive strength.  The
2016-era flow stacks a decade of additions: multi-level kernel
extraction, AIG rewriting/refactoring/balancing, cut-based mapping with
the full drive ladder, sizing, and multi-Vt leakage recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.aig import Aig
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist
from repro.synthesis.mapping import map_aig
from repro.synthesis.network import LogicNetwork
from repro.synthesis.rewrite import balance, optimize_aig
from repro.synthesis.sizing import assign_vt, size_gates
from repro.timing import TimingAnalyzer, WireModel

#: Flow recipes, oldest first.  Each maps to concrete pass settings.
ERAS = ("1996", "2006", "2016")


@dataclass
class SynthesisResult:
    """QoR of one synthesis run."""

    netlist: Netlist
    era: str
    area_um2: float
    delay_ps: float
    leakage_nw: float
    instances: int

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"era {self.era}: {self.instances} cells, "
            f"{self.area_um2:.1f} um2, {self.delay_ps:.1f} ps, "
            f"{self.leakage_nw:.1f} nW leak"
        )


class SynthesisFlow:
    """A configurable RTL-to-gates flow.

    Parameters
    ----------
    library:
        Target cell library (should include lvt/rvt/hvt for era 2016).
    era:
        "1996" (trivial mapping of swept logic), "2006" (two-level +
        algebraic multi-level, area mapping, single drive), or "2016"
        (full AIG optimization, delay-aware mapping, sizing, multi-Vt).
    clock_period_ps:
        Timing target used by sizing and Vt recovery.
    """

    def __init__(self, library: CellLibrary, era: str = "2016",
                 clock_period_ps: float = 1000.0):
        if era not in ERAS:
            raise ValueError(f"era must be one of {ERAS}")
        self.library = library
        self.era = era
        self.clock_period_ps = clock_period_ps
        node = library.node
        self.wire_model = WireModel.for_node(node)

    # ------------------------------------------------------------------

    def run(self, subject: "Aig | LogicNetwork") -> SynthesisResult:
        """Synthesize an AIG or logic network to a mapped netlist."""
        if isinstance(subject, LogicNetwork):
            network = subject
        elif isinstance(subject, Aig):
            network = LogicNetwork.from_aig(subject)
        else:
            raise TypeError("subject must be an Aig or LogicNetwork")

        if self.era == "1996":
            network.sweep()
            aig = network.to_aig()
            netlist = map_aig(
                aig, self.library, mode="area", cut_size=2,
                cell_filter=_only("X1", ("rvt",)))
        elif self.era == "2006":
            network.optimize(effort="medium")
            aig = balance(network.to_aig())
            netlist = map_aig(
                aig, self.library, mode="area", cut_size=3,
                cell_filter=_only("X1", ("rvt",)))
        else:  # 2016
            network.optimize(effort="high")
            aig = optimize_aig(network.to_aig(), effort="high")
            # Area-mode mapping: the decade's gains land on area, delay,
            # and power *simultaneously* (Domic), with sizing recovering
            # speed where the clock demands it.
            netlist = map_aig(aig, self.library, mode="area", cut_size=4)
            size_gates(netlist, wire_model=self.wire_model,
                       clock_period_ps=self.clock_period_ps)
            if any(c.vt_flavor == "hvt" for c in self.library):
                assign_vt(netlist, wire_model=self.wire_model,
                          clock_period_ps=self.clock_period_ps)
        return self._qor(netlist)

    def _qor(self, netlist: Netlist) -> SynthesisResult:
        report = TimingAnalyzer(
            netlist, self.wire_model, self.clock_period_ps).analyze()
        return SynthesisResult(
            netlist=netlist,
            era=self.era,
            area_um2=netlist.area_um2(),
            delay_ps=report.critical_delay_ps,
            leakage_nw=netlist.leakage_nw(),
            instances=netlist.num_instances(),
        )


def _only(drive: str, vts: tuple):
    """Cell filter: restrict to one drive strength and given Vt set."""
    def accept(cell) -> bool:
        return f"_{drive}_" in cell.name and cell.vt_flavor in vts
    return accept


def decade_comparison(subject_factory, library: CellLibrary,
                      clock_period_ps: float = 1000.0) -> dict:
    """Run the same design through every era flow.

    ``subject_factory`` must return a *fresh* AIG or LogicNetwork per
    call (flows mutate their input).  Returns era -> SynthesisResult.
    """
    results = {}
    for era in ERAS:
        flow = SynthesisFlow(library, era, clock_period_ps)
        results[era] = flow.run(subject_factory())
    return results
