"""Era-calibrated synthesis flows.

Experiment E1 (Domic): "in the last ten years, we have improved advanced
RTL synthesis results by 30% in terms of area — incidentally, we have
also improved performance, and power by approximately the same amount."

The 2006-era flow is the first EDA generation: two-level cleanup and a
straightforward structural mapping at a single drive strength.  The
2016-era flow stacks a decade of additions: multi-level kernel
extraction, AIG rewriting/refactoring/balancing, cut-based mapping with
the full drive ladder, sizing, and multi-Vt leakage recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.engines import get_engine
from repro.netlist.aig import Aig
from repro.netlist.cells import CellLibrary
from repro.netlist.circuit import Netlist
from repro.synthesis.network import LogicNetwork
from repro.synthesis.rewrite import balance, optimize_aig
from repro.synthesis.sizing import assign_vt
from repro.timing import TimingAnalyzer, WireModel

#: Flow recipes, oldest first.  Each maps to concrete pass settings.
ERAS = ("1996", "2006", "2016")


@dataclass
class SynthesisResult:
    """QoR of one synthesis run."""

    netlist: Netlist
    era: str
    area_um2: float
    delay_ps: float
    leakage_nw: float
    instances: int

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"era {self.era}: {self.instances} cells, "
            f"{self.area_um2:.1f} um2, {self.delay_ps:.1f} ps, "
            f"{self.leakage_nw:.1f} nW leak"
        )


class SynthesisFlow:
    """A configurable RTL-to-gates flow.

    Parameters
    ----------
    library:
        Target cell library (should include lvt/rvt/hvt for era 2016).
    era:
        "1996" (trivial mapping of swept logic), "2006" (two-level +
        algebraic multi-level, area mapping, single drive), or "2016"
        (full AIG optimization, delay-aware mapping, sizing, multi-Vt).
    clock_period_ps:
        Timing target used by sizing and Vt recovery.
    engine:
        Mapper engine from the :mod:`repro.engines` registry
        (``"area"`` | ``"delay"`` | ``"trivial"``; ``None`` means the
        stage default).  The era recipe keeps choosing the
        optimization script, cut size, and cell filter around it; the
        run body never branches on the name.
    sizing_engine:
        Sizing-loop engine from the registry (``"incremental"`` |
        ``"scalar"``; ``None`` means the stage default).  Both produce
        bit-identical netlists — the engine only picks the timing
        analyzer behind each trial resize.

    Engine typos raise :class:`~repro.engines.UnknownEngineError` (a
    ``ValueError``) here in the constructor; callers replaying old
    journals resolve retired names leniently *before* constructing the
    flow (see :func:`repro.orchestrate.flows.stage_synthesis`).
    """

    def __init__(self, library: CellLibrary, era: str = "2016",
                 clock_period_ps: float = 1000.0, *,
                 engine: str | None = None,
                 sizing_engine: str | None = None) -> None:
        from repro.engines import default_engine
        if era not in ERAS:
            raise ValueError(f"era must be one of {ERAS}")
        self.library = library
        self.era = era
        self.clock_period_ps = clock_period_ps
        self.engine = get_engine(
            "synthesis", engine or default_engine("synthesis")).name
        self.sizing_engine = get_engine(
            "sizing", sizing_engine or default_engine("sizing")).name
        node = library.node
        self.wire_model = WireModel.for_node(node)

    # ------------------------------------------------------------------

    def run(self, subject: "Aig | LogicNetwork") -> SynthesisResult:
        """Synthesize an AIG or logic network to a mapped netlist."""
        if isinstance(subject, LogicNetwork):
            network = subject
        elif isinstance(subject, Aig):
            network = LogicNetwork.from_aig(subject)
        else:
            raise TypeError("subject must be an Aig or LogicNetwork")

        mapper = get_engine("synthesis", self.engine).load()
        if self.era == "1996":
            network.sweep()
            aig = network.to_aig()
            netlist = mapper(
                aig, self.library, cut_size=2,
                cell_filter=_only("X1", ("rvt",)))
        elif self.era == "2006":
            network.optimize(effort="medium")
            aig = balance(network.to_aig())
            netlist = mapper(
                aig, self.library, cut_size=3,
                cell_filter=_only("X1", ("rvt",)))
        else:  # 2016
            network.optimize(effort="high")
            aig = optimize_aig(network.to_aig(), effort="high")
            # Area-mode mapping by default: the decade's gains land on
            # area, delay, and power *simultaneously* (Domic), with
            # sizing recovering speed where the clock demands it.
            netlist = mapper(aig, self.library, cut_size=4,
                             cell_filter=None)
            size = get_engine("sizing", self.sizing_engine).load()
            size(netlist, wire_model=self.wire_model,
                 clock_period_ps=self.clock_period_ps)
            if any(c.vt_flavor == "hvt" for c in self.library):
                assign_vt(netlist, wire_model=self.wire_model,
                          clock_period_ps=self.clock_period_ps)
        return self._qor(netlist)

    def _qor(self, netlist: Netlist) -> SynthesisResult:
        report = TimingAnalyzer(
            netlist, self.wire_model, self.clock_period_ps).analyze()
        return SynthesisResult(
            netlist=netlist,
            era=self.era,
            area_um2=netlist.area_um2(),
            delay_ps=report.critical_delay_ps,
            leakage_nw=netlist.leakage_nw(),
            instances=netlist.num_instances(),
        )


def _only(drive: str, vts: tuple[str, ...]) -> Callable[[Any], bool]:
    """Cell filter: restrict to one drive strength and given Vt set."""
    def accept(cell: Any) -> bool:
        return f"_{drive}_" in cell.name and cell.vt_flavor in vts
    return accept


def decade_comparison(
    subject_factory: Callable[[], Aig | LogicNetwork],
    library: CellLibrary,
    clock_period_ps: float = 1000.0,
) -> dict[str, SynthesisResult]:
    """Run the same design through every era flow.

    ``subject_factory`` must return a *fresh* AIG or LogicNetwork per
    call (flows mutate their input).  Returns era -> SynthesisResult.
    """
    results: dict[str, SynthesisResult] = {}
    for era in ERAS:
        flow = SynthesisFlow(library, era, clock_period_ps)
        results[era] = flow.run(subject_factory())
    return results
