"""Algebraic division, kernels, and factoring — the MIS/SIS engine.

Multi-level logic here is manipulated as *algebraic* sums of products: a
:data:`Sop` is a list of cubes, each cube a frozenset of literals, each
literal a ``(variable_name, phase)`` pair.  Algebraic (as opposed to
Boolean) operations treat literals as opaque symbols, which is what
makes kernel extraction fast.
"""

from __future__ import annotations

import itertools
from collections import Counter

from repro.netlist.cubes import ABSENT, Cover, Cube

#: A literal: (variable name, phase); phase False means complemented.
Literal = tuple
#: A cube: frozenset of literals.  A SOP: list of cubes.
Sop = list


def sop_literal_count(sop: Sop) -> int:
    """Total number of literals — the multi-level area proxy."""
    return sum(len(c) for c in sop)


def sop_support(sop: Sop) -> set:
    """Variable names appearing in the SOP."""
    return {name for cube in sop for (name, _) in cube}


def sop_is_algebraic(sop: Sop) -> bool:
    """True if no cube contains another (required for kernel theory)."""
    for a, b in itertools.permutations(sop, 2):
        if a <= b:
            return False
    return True


def make_cube(*literals) -> frozenset:
    """Helper: build a cube from (name, phase) pairs."""
    return frozenset(literals)


def sop_from_cover(cover: Cover, var_names: list) -> Sop:
    """Convert a positional :class:`Cover` into a named SOP."""
    if len(var_names) != cover.nvars:
        raise ValueError("var_names length mismatch")
    sop = []
    for cube in cover.cubes:
        lits = set()
        for i, v in enumerate(cube.literals):
            if v != ABSENT:
                lits.add((var_names[i], bool(v)))
        sop.append(frozenset(lits))
    return sop


def sop_to_cover(sop: Sop, var_names: list) -> Cover:
    """Convert a named SOP back into a positional cover."""
    index = {n: i for i, n in enumerate(var_names)}
    cubes = []
    for cube in sop:
        lits = [ABSENT] * len(var_names)
        for name, phase in cube:
            lits[index[name]] = 1 if phase else 0
        cubes.append(Cube(tuple(lits)))
    return Cover(cubes, len(var_names))


def cube_divide(cube: frozenset, divisor: frozenset):
    """cube / divisor for single cubes: the co-factor, or None."""
    if divisor <= cube:
        return cube - divisor
    return None


def algebraic_divide(f: Sop, divisor: Sop):
    """Weak (algebraic) division: returns (quotient, remainder).

    ``f = quotient * divisor + remainder`` where the product is
    algebraic (no variable shared between quotient and divisor).
    """
    if not divisor:
        raise ValueError("division by empty SOP")
    quotients = []
    for d in divisor:
        qi = {cube - d for cube in f if d <= cube}
        quotients.append(qi)
    q = set.intersection(*quotients) if quotients else set()
    # The algebraic condition: quotient must share no variable with the
    # divisor.
    dvars = sop_support(divisor)
    q = {c for c in q if not ({name for (name, _) in c} & dvars)}
    product = {qc | dc for qc in q for dc in divisor}
    remainder = [c for c in f if c not in product]
    return sorted(q, key=sorted), remainder


def kernels(f: Sop, min_level: int = 0) -> list:
    """All kernels of ``f`` with their co-kernels.

    A kernel is a cube-free quotient of ``f`` by a cube; returned as a
    list of ``(cokernel_cube, kernel_sop)`` pairs, including the trivial
    kernel (``f`` itself if cube-free).  Classic recursive algorithm
    over the literals sorted by frequency.
    """
    f = [frozenset(c) for c in f]
    out: list = []
    seen: set = set()

    def largest_common_cube(cubes) -> frozenset:
        if not cubes:
            return frozenset()
        common = set(cubes[0])
        for c in cubes[1:]:
            common &= c
        return frozenset(common)

    def is_cube_free(sop) -> bool:
        return not largest_common_cube(sop)

    lit_order = [lit for lit, _ in Counter(
        lit for cube in f for lit in cube).most_common()]
    lit_index = {lit: i for i, lit in enumerate(lit_order)}

    def recurse(g: Sop, cokernel: frozenset, start: int) -> None:
        key = frozenset(g)
        if key in seen:
            return
        seen.add(key)
        if is_cube_free(g) and len(g) > 1:
            out.append((cokernel, sorted(g, key=sorted)))
        for i in range(start, len(lit_order)):
            lit = lit_order[i]
            with_lit = [c for c in g if lit in c]
            if len(with_lit) < 2:
                continue
            stripped = [c - {lit} for c in with_lit]
            common = largest_common_cube(stripped)
            sub = [c - common for c in stripped]
            # Skip if a smaller-indexed literal divides the whole
            # quotient (it will be found from that branch).
            if any(lit_index.get(x, len(lit_order)) < i for x in common):
                continue
            recurse(sub, cokernel | {lit} | common, i + 1)

    recurse(f, frozenset(), 0)
    if is_cube_free(f) and len(f) > 1:
        out.append((frozenset(), sorted(f, key=sorted)))
    # Deduplicate identical kernels (same SOP, different cokernels kept).
    uniq = []
    seen_pairs = set()
    for ck, k in out:
        key = (ck, tuple(sorted(tuple(sorted(c)) for c in k)))
        if key not in seen_pairs:
            seen_pairs.add(key)
            uniq.append((ck, k))
    return uniq


def kernel_value(kernel: Sop, cokernels: list) -> int:
    """Literal savings from extracting a kernel at the given use sites.

    At a use with cokernel ``ck`` the kernel's ``|K|`` cubes (``L``
    literals plus ``|K| * |ck|`` copies of the cokernel) collapse to a
    single cube of ``|ck| + 1`` literals; the kernel body is then
    implemented once at cost ``L``.
    """
    body = sop_literal_count(kernel)
    ncubes = len(kernel)
    saved = 0
    for ck in cokernels:
        saved += body + ncubes * len(ck) - (len(ck) + 1)
    return saved - body


def best_common_kernel(sops: dict):
    """Find the kernel with the best total savings across named SOPs.

    Returns ``(kernel_sop, savings, users)`` or ``None``; ``users`` maps
    SOP name -> list of cokernels where the kernel divides it.
    """
    table: dict = {}
    for name, sop in sops.items():
        for ck, k in kernels(sop):
            key = tuple(sorted(tuple(sorted(c)) for c in k))
            table.setdefault(key, {"kernel": k, "users": []})
            table[key]["users"].append((name, ck))
    best = None
    for entry in table.values():
        uses = len(entry["users"])
        if uses < 2:
            continue
        value = kernel_value(entry["kernel"],
                             [ck for _, ck in entry["users"]])
        if value > 0 and (best is None or value > best[1]):
            users: dict = {}
            for name, ck in entry["users"]:
                users.setdefault(name, []).append(ck)
            best = (entry["kernel"], value, users)
    return best


def factor(sop: Sop, _depth: int = 0):
    """Algebraic "good factoring": returns an expression tree.

    Tree grammar: ``("lit", name, phase)`` | ``("and", [t...])`` |
    ``("or", [t...])`` | ``("const", bool)``.  The divisor is the best
    kernel when one exists (the SIS good-factor), falling back to the
    most frequent literal (quick-factor).
    """
    if _depth > 64:
        raise RecursionError("factoring depth exceeded")
    if not sop:
        return ("const", False)
    if any(len(c) == 0 for c in sop):
        return ("const", True)
    if len(sop) == 1:
        cube = sop[0]
        terms = [("lit", name, phase) for name, phase in sorted(cube)]
        return terms[0] if len(terms) == 1 else ("and", terms)

    # Good-factor: divide by the largest proper kernel.
    whole = {frozenset(c) for c in sop}
    candidates = [k for _, k in kernels(sop)
                  if {frozenset(c) for c in k} != whole]
    candidates.sort(key=lambda k: (-len(k), sop_literal_count(k)))
    for divisor in candidates:
        quotient, remainder = algebraic_divide(sop, divisor)
        if quotient:
            prod = ("and", [factor(list(quotient), _depth + 1),
                            factor(divisor, _depth + 1)])
            if not remainder:
                return prod
            return ("or", [prod, factor(remainder, _depth + 1)])

    # Quick-factor fallback: most frequent literal.
    freq = Counter(lit for cube in sop for lit in cube)
    lit, count = freq.most_common(1)[0]
    if count < 2:
        return ("or", [factor([c], _depth + 1) for c in sop])
    quotient, remainder = algebraic_divide(sop, [frozenset({lit})])
    if not quotient:
        return ("or", [factor([c], _depth + 1) for c in sop])
    name, phase = lit
    prod = ("and", [("lit", name, phase),
                    factor(list(quotient), _depth + 1)])
    if not remainder:
        return prod
    return ("or", [prod, factor(remainder, _depth + 1)])


def factor_literal_count(sop: Sop) -> int:
    """Literal count of the factored form :func:`factor` produces.

    The cost a factored implementation (AND/OR tree) would pay; used to
    decide whether factoring helps.
    """
    return tree_literal_count(factor(sop))


def tree_literal_count(tree) -> int:
    """Number of literal leaves in a factor tree."""
    kind = tree[0]
    if kind == "const":
        return 0
    if kind == "lit":
        return 1
    return sum(tree_literal_count(t) for t in tree[1])
