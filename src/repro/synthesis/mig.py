"""Majority-Inverter Graphs: the new logic abstraction the panel asks for.

De Micheli's introduction: emerging devices (SiNW and CNT
controlled-polarity transistors) "are no longer simple switches, but
switches controlled by the combination of electrical signals ... The
arrival of such technologies has brought the need of new logic
abstractions and in turn the requirement of new logic synthesis models
and algorithms.  It is obvious that achieving competitive design in the
10nm range and beyond can no longer be thought in terms [of] NANDs,
NORs and AOIs."

The MIG is exactly that abstraction: every node is a three-input
majority with optional edge inverters.  MAJ subsumes AND/OR (fix one
input to 0/1), so MIGs are never worse than AIGs — and on carry-
dominated arithmetic they are strictly better, because a full-adder
carry IS a majority (experiment E16).
"""

from __future__ import annotations

import numpy as np

MIG_FALSE = 0
MIG_TRUE = 1


def lit_not(lit: int) -> int:
    """Negate a literal."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def lit_is_neg(lit: int) -> bool:
    """True if the literal is complemented."""
    return bool(lit & 1)


class Mig:
    """A mutable Majority-Inverter Graph.

    Node 0 is constant false; nodes ``1..num_inputs`` are primary
    inputs; the rest are MAJ nodes.  Construction applies the
    Ω-algebra simplification rules (majority, complement-pair, and
    constant absorption) plus structural hashing with sorted fanins.
    """

    def __init__(self, num_inputs: int = 0, input_names=None):
        self.num_inputs = 0
        self.input_names: list[str] = []
        self._fanins: list[tuple] = [(0, 0, 0)]
        self._strash: dict[tuple, int] = {}
        self.outputs: list[int] = []
        self.output_names: list[str] = []
        names = input_names or [f"i{k}" for k in range(num_inputs)]
        if len(names) != num_inputs:
            raise ValueError("input_names length mismatch")
        for nm in names:
            self.add_input(nm)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str | None = None) -> int:
        """Add a primary input; returns its positive literal."""
        if self.num_majs:
            raise ValueError("inputs must be added before MAJ nodes")
        self.num_inputs += 1
        self.input_names.append(name or f"i{self.num_inputs - 1}")
        self._fanins.append((0, 0, 0))
        return 2 * self.num_inputs

    def input_lit(self, index: int) -> int:
        """Positive literal of input ``index``."""
        if not 0 <= index < self.num_inputs:
            raise IndexError("input index out of range")
        return 2 * (index + 1)

    def maj_(self, a: int, b: int, c: int) -> int:
        """MAJ of three literals with Ω-rule simplification."""
        for lit in (a, b, c):
            self._check_lit(lit)
        # Ω.M majority rules: MAJ(x, x, y) = x; MAJ(x, !x, y) = y.
        if a == b or a == c:
            return a
        if b == c:
            return b
        if a == lit_not(b):
            return c
        if a == lit_not(c):
            return b
        if b == lit_not(c):
            return a
        # Canonical order; propagate an inverted majority so the first
        # literal is positive (MAJ(!x,!y,!z) = !MAJ(x,y,z) keeps the
        # strash canonical under complementation of all three).
        key = tuple(sorted((a, b, c)))
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return 2 * node

    def and_(self, a: int, b: int) -> int:
        """AND via MAJ(a, b, 0)."""
        return self.maj_(a, b, MIG_FALSE)

    def or_(self, a: int, b: int) -> int:
        """OR via MAJ(a, b, 1)."""
        return self.maj_(a, b, MIG_TRUE)

    def xor_(self, a: int, b: int) -> int:
        """XOR as MAJ(!MAJ(a,b,0), MAJ(a,b,1)... the standard 3-MAJ
        form: (a | b) & !(a & b)."""
        return self.and_(self.or_(a, b), lit_not(self.and_(a, b)))

    def add_output(self, lit: int, name: str | None = None) -> None:
        """Register a primary output literal."""
        self._check_lit(lit)
        self.outputs.append(lit)
        self.output_names.append(name or f"o{len(self.outputs) - 1}")

    def _check_lit(self, lit: int) -> None:
        if not 0 <= lit_var(lit) < self.num_nodes:
            raise ValueError(f"literal {lit} references unknown node")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._fanins)

    @property
    def num_majs(self) -> int:
        """MAJ node count — the MIG size metric."""
        return self.num_nodes - 1 - self.num_inputs

    def fanins(self, node: int) -> tuple:
        if not self.is_maj(node):
            raise ValueError(f"node {node} is not a MAJ")
        return self._fanins[node]

    def is_input(self, node: int) -> bool:
        return 1 <= node <= self.num_inputs

    def is_maj(self, node: int) -> bool:
        return node > self.num_inputs

    def levels(self) -> list:
        lev = [0] * self.num_nodes
        for n in range(self.num_inputs + 1, self.num_nodes):
            lev[n] = 1 + max(lev[lit_var(f)] for f in self._fanins[n])
        return lev

    def depth(self) -> int:
        """Logic depth over the outputs."""
        if not self.outputs:
            return 0
        lev = self.levels()
        return max(lev[lit_var(o)] for o in self.outputs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(self, input_vectors: np.ndarray) -> np.ndarray:
        """Bit-parallel simulation; same contract as :class:`Aig`."""
        vec = np.asarray(input_vectors, dtype=bool)
        if vec.ndim != 2 or vec.shape[1] != self.num_inputs:
            raise ValueError("input_vectors must be (patterns, inputs)")
        npat = vec.shape[0]
        vals = np.zeros((self.num_nodes, npat), dtype=bool)
        for i in range(self.num_inputs):
            vals[i + 1] = vec[:, i]
        for n in range(self.num_inputs + 1, self.num_nodes):
            a, b, c = self._fanins[n]
            va = vals[lit_var(a)] ^ lit_is_neg(a)
            vb = vals[lit_var(b)] ^ lit_is_neg(b)
            vc = vals[lit_var(c)] ^ lit_is_neg(c)
            vals[n] = (va & vb) | (va & vc) | (vb & vc)
        out = np.empty((npat, len(self.outputs)), dtype=bool)
        for k, o in enumerate(self.outputs):
            out[:, k] = vals[lit_var(o)] ^ lit_is_neg(o)
        return out

    def simulate_all(self) -> np.ndarray:
        """Exhaustive simulation (inputs <= 20)."""
        if self.num_inputs > 20:
            raise ValueError("too many inputs")
        n = self.num_inputs
        patterns = np.array(
            [[(m >> i) & 1 for i in range(n)] for m in range(1 << n)],
            dtype=bool).reshape(1 << n, n)
        return self.simulate(patterns)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def cleanup(self) -> "Mig":
        """Copy keeping only nodes reachable from the outputs."""
        live = set()
        stack = [lit_var(o) for o in self.outputs]
        while stack:
            n = stack.pop()
            if n in live or not self.is_maj(n):
                continue
            live.add(n)
            stack.extend(lit_var(f) for f in self._fanins[n])
        out = Mig(self.num_inputs, list(self.input_names))
        mapping = {0: MIG_FALSE}
        for i in range(self.num_inputs):
            mapping[i + 1] = out.input_lit(i)
        for n in range(self.num_inputs + 1, self.num_nodes):
            if n not in live:
                continue
            a, b, c = self._fanins[n]
            mapping[n] = out.maj_(
                mapping[lit_var(a)] ^ (a & 1),
                mapping[lit_var(b)] ^ (b & 1),
                mapping[lit_var(c)] ^ (c & 1),
            )
        for o, nm in zip(self.outputs, self.output_names):
            out.add_output(mapping[lit_var(o)] ^ (o & 1), nm)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Mig(inputs={self.num_inputs}, majs={self.num_majs}, "
                f"outputs={len(self.outputs)}, depth={self.depth()})")


def mig_from_aig(aig) -> Mig:
    """Convert an AIG: every AND becomes MAJ(a, b, 0)."""
    from repro.netlist.aig import Aig, lit_var as alit_var

    if not isinstance(aig, Aig):
        raise TypeError("expected an Aig")
    mig = Mig(aig.num_inputs, list(aig.input_names))
    mapping = {0: MIG_FALSE}
    for i in range(aig.num_inputs):
        mapping[i + 1] = mig.input_lit(i)
    for n in range(aig.num_inputs + 1, aig.num_nodes):
        a, b = aig.fanins(n)
        mapping[n] = mig.and_(
            mapping[alit_var(a)] ^ (a & 1),
            mapping[alit_var(b)] ^ (b & 1),
        )
    for o, nm in zip(aig.outputs, aig.output_names):
        mig.add_output(mapping[alit_var(o)] ^ (o & 1), nm)
    return mig


def mig_adder(width: int) -> Mig:
    """An n-bit ripple-carry adder in native majority logic.

    The carry is ONE majority node per bit (vs three ANDs in an AIG):
    the structure "functionality-enhanced devices" implement natively.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    mig = Mig(2 * width + 1,
              [f"a{i}" for i in range(width)]
              + [f"b{i}" for i in range(width)] + ["cin"])
    a = [mig.input_lit(i) for i in range(width)]
    b = [mig.input_lit(width + i) for i in range(width)]
    carry = mig.input_lit(2 * width)
    for i in range(width):
        s = mig.xor_(mig.xor_(a[i], b[i]), carry)
        carry = mig.maj_(a[i], b[i], carry)
        mig.add_output(s, f"sum{i}")
    mig.add_output(carry, "cout")
    return mig


def aig_adder(width: int):
    """The same adder as an AIG, for the E16 comparison."""
    from repro.netlist.aig import Aig

    if width < 1:
        raise ValueError("width must be >= 1")
    aig = Aig(2 * width + 1,
              [f"a{i}" for i in range(width)]
              + [f"b{i}" for i in range(width)] + ["cin"])
    a = [aig.input_lit(i) for i in range(width)]
    b = [aig.input_lit(width + i) for i in range(width)]
    carry = aig.input_lit(2 * width)
    for i in range(width):
        s = aig.xor_(aig.xor_(a[i], b[i]), carry)
        # Carry = MAJ(a, b, cin) expressed with ANDs.
        ab = aig.and_(a[i], b[i])
        ac = aig.and_(a[i], carry)
        bc = aig.and_(b[i], carry)
        carry = aig.or_(aig.or_(ab, ac), bc)
        aig.add_output(s, f"sum{i}")
    aig.add_output(carry, "cout")
    return aig
