"""Min-period retiming (Leiserson-Saxe).

Sequential optimization the "advanced RTL synthesis" of E1 includes:
moving registers across combinational logic to balance pipeline stages.
Implemented on the classic retiming graph — nodes carry combinational
delay, edges carry register counts — with the binary-search-over-
feasibility algorithm (Bellman-Ford on the constraint graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RetimingGraph:
    """A synchronous circuit abstracted for retiming.

    ``delays[v]`` is node v's combinational delay; ``edges`` is a list
    of ``(u, v, weight)`` with ``weight`` = number of registers on the
    path u -> v.  A distinguished ``host`` node (conventionally 0 with
    zero delay) closes I/O paths so retiming cannot borrow registers
    from the environment.
    """

    delays: dict = field(default_factory=dict)
    edges: list = field(default_factory=list)

    def add_node(self, node, delay: float) -> None:
        """Declare a node with its combinational delay."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delays[node] = delay

    def add_edge(self, u, v, weight: int) -> None:
        """Connect u -> v with ``weight`` registers."""
        if weight < 0:
            raise ValueError("register count must be non-negative")
        for n in (u, v):
            if n not in self.delays:
                raise KeyError(f"unknown node {n!r}")
        self.edges.append((u, v, weight))

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Every directed cycle must carry at least one register."""
        # DFS over zero-register edges looking for a cycle.
        zero_adj: dict = {}
        for u, v, w in self.edges:
            if w == 0:
                zero_adj.setdefault(u, []).append(v)
        state: dict = {}

        def visit(node):
            mark = state.get(node, 0)
            if mark == 1:
                raise ValueError("combinational cycle (no registers)")
            if mark == 2:
                return
            state[node] = 1
            for nxt in zero_adj.get(node, ()):
                visit(nxt)
            state[node] = 2

        for node in self.delays:
            visit(node)

    def clock_period(self) -> float:
        """Critical combinational delay of the current registering.

        Longest delay path through zero-register edges.
        """
        self.validate()
        zero_adj: dict = {}
        indeg = {n: 0 for n in self.delays}
        for u, v, w in self.edges:
            if w == 0:
                zero_adj.setdefault(u, []).append(v)
                indeg[v] += 1
        order = [n for n, d in indeg.items() if d == 0]
        arrival = {n: self.delays[n] for n in self.delays}
        queue = list(order)
        while queue:
            u = queue.pop()
            for v in zero_adj.get(u, ()):
                arrival[v] = max(arrival[v],
                                 arrival[u] + self.delays[v])
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        return max(arrival.values(), default=0.0)

    # ------------------------------------------------------------------

    def retime(self, target_period: float):
        """Find a legal retiming achieving ``target_period``.

        Returns node -> retiming label r (registers moved from the
        node's outputs to its inputs), or ``None`` if infeasible.
        Constraint system (Leiserson-Saxe):

        * ``r(u) - r(v) <= w(e)`` for every edge e: u -> v  (legality);
        * ``r(u) - r(v) <= W(u,v) - 1`` for every pair with
          ``D(u,v) > target`` (period).

        Solved by Bellman-Ford on the constraint graph.
        """
        nodes = list(self.delays)
        w_mat, d_mat = self._wd_matrices()
        constraints: list = []
        for u, v, w in self.edges:
            constraints.append((v, u, w))           # r(u) <= r(v) + w
        for (u, v), wd in w_mat.items():
            if d_mat[(u, v)] > target_period + 1e-12:
                constraints.append((v, u, wd - 1))
        # Bellman-Ford from a virtual source connected to all nodes.
        dist = {n: 0.0 for n in nodes}
        for _ in range(len(nodes)):
            changed = False
            for v, u, bound in constraints:
                if dist[v] + bound < dist[u] - 1e-12:
                    dist[u] = dist[v] + bound
                    changed = True
            if not changed:
                break
        else:
            return None  # negative cycle: infeasible
        labels = {n: int(round(dist[n])) for n in nodes}
        # Verify legality.
        for u, v, w in self.edges:
            if w + labels[v] - labels[u] < 0:
                return None
        return labels

    def apply(self, labels: dict) -> "RetimingGraph":
        """The retimed graph: w'(e) = w(e) + r(v) - r(u)."""
        out = RetimingGraph(dict(self.delays), [])
        for u, v, w in self.edges:
            out.edges.append((u, v, w + labels[v] - labels[u]))
        return out

    def min_period(self, *, resolution: float = 0.01):
        """Binary-search the smallest achievable period.

        Returns ``(period, labels)``.
        """
        _, d_mat = self._wd_matrices()
        candidates = sorted(set(d_mat.values()))
        lo, hi = 0, len(candidates) - 1
        best = (self.clock_period(), {n: 0 for n in self.delays})
        while lo <= hi:
            mid = (lo + hi) // 2
            labels = self.retime(candidates[mid])
            if labels is not None:
                best = (candidates[mid], labels)
                hi = mid - 1
            else:
                lo = mid + 1
        return best

    def _wd_matrices(self):
        """The classic W (min registers) and D (max delay) matrices."""
        nodes = list(self.delays)
        inf = float("inf")
        w_mat: dict = {}
        d_mat: dict = {}
        # All-pairs shortest path on (w, -d) lexicographic weights
        # (Floyd-Warshall; graphs here are small).
        w = {(u, v): inf for u in nodes for v in nodes}
        d = {(u, v): -inf for u in nodes for v in nodes}
        for u in nodes:
            w[(u, u)] = 0
            d[(u, u)] = self.delays[u]
        for u, v, wt in self.edges:
            cand_w = wt
            cand_d = self.delays[u] + self.delays[v]
            if cand_w < w[(u, v)] or (cand_w == w[(u, v)] and
                                      cand_d > d[(u, v)]):
                w[(u, v)] = cand_w
                d[(u, v)] = cand_d
        for k in nodes:
            for i in nodes:
                if w[(i, k)] == inf:
                    continue
                for j in nodes:
                    if w[(k, j)] == inf:
                        continue
                    cand_w = w[(i, k)] + w[(k, j)]
                    cand_d = d[(i, k)] + d[(k, j)] - self.delays[k]
                    if cand_w < w[(i, j)] or (
                            cand_w == w[(i, j)] and cand_d > d[(i, j)]):
                        w[(i, j)] = cand_w
                        d[(i, j)] = cand_d
        for u in nodes:
            for v in nodes:
                if w[(u, v)] < inf:
                    w_mat[(u, v)] = int(w[(u, v)])
                    d_mat[(u, v)] = d[(u, v)]
        return w_mat, d_mat


#: Name of the environment node closing I/O paths in bridged graphs.
HOST = "__host__"


def retiming_graph_from_netlist(netlist, *, wire_model=None,
                                clock_period_ps: float = 1000.0,
                                analyzer=None) -> RetimingGraph:
    """Abstract a mapped :class:`~repro.netlist.Netlist` into a
    :class:`RetimingGraph`.

    Nodes are combinational gates annotated with the timing engine's
    cached per-gate cell delays
    (:meth:`~repro.timing.IncrementalTimingAnalyzer.gate_delays_ps`);
    edge weights count the flops crossed between two combinational
    gates (a walk through flop D -> Q hops, guarded against flop-only
    rings such as LFSRs).  A ``HOST`` node closes I/O paths with
    weight-1 edges — the registered-I/O assumption, so retiming cannot
    borrow registers from the environment.  Scan pins (SI/SE) are not
    followed: the graph models the functional paths.

    Pass an existing ``analyzer`` to reuse its levelized graph; one is
    built (and detached) internally otherwise.
    """
    from repro.timing.incremental import IncrementalTimingAnalyzer

    own = analyzer is None
    if own:
        analyzer = IncrementalTimingAnalyzer(netlist, wire_model,
                                             clock_period_ps)
    try:
        delays = analyzer.gate_delays_ps()
    finally:
        if own:
            analyzer.close()

    g = RetimingGraph()
    g.add_node(HOST, 0.0)
    comb = [gt for gt in netlist.gates.values()
            if not gt.cell.is_sequential]
    for gt in comb:
        g.add_node(gt.name, delays.get(gt.name, gt.cell.intrinsic_ps))

    fan = netlist.fanout_map()
    po_set = set(netlist.primary_outputs)
    edges: dict = {}        # (u, v) -> min registers on any path

    def note(u, v, w):
        key = (u, v)
        if key not in edges or w < edges[key]:
            edges[key] = w

    def sinks_from(net, weight, visited_flops):
        """Yield (node, registers) for every comb gate or HOST sink
        reachable from ``net`` through flops only."""
        if net in po_set:
            yield (HOST, weight + 1)
        for reader, pin in fan.get(net, ()):
            if reader.cell.is_sequential:
                if pin == "D" and reader.name not in visited_flops:
                    visited_flops.add(reader.name)
                    yield from sinks_from(reader.output, weight + 1,
                                          visited_flops)
            else:
                yield (reader.name, weight)

    for gt in comb:
        for v, w in sinks_from(gt.output, 0, set()):
            note(gt.name, v, w)
    for pi in netlist.primary_inputs:
        for v, w in sinks_from(pi, 1, set()):
            note(HOST, v, w)
    for (u, v), w in sorted(edges.items()):
        g.add_edge(u, v, w)
    return g


def unbalanced_ring_example(stages: int = 3, *,
                            slow_delay: float = 10.0,
                            fast_delay: float = 1.0) -> RetimingGraph:
    """A feedback ring with all its registers bunched on one edge.

    The canonical retiming win: the initial period is the sum of all
    stage delays (one long zero-register path); after retiming each
    stage gets its own register and the period drops to the slowest
    single stage.
    """
    if stages < 2:
        raise ValueError("need at least 2 stages")
    g = RetimingGraph()
    names = []
    for k in range(stages):
        delay = slow_delay if k == stages // 2 else fast_delay
        name = f"v{k}"
        g.add_node(name, delay)
        names.append(name)
    for k in range(stages - 1):
        g.add_edge(names[k], names[k + 1], 0)
    # All registers on the feedback edge.
    g.add_edge(names[-1], names[0], stages)
    return g
