"""Logic synthesis: two-level, multi-level, AIG, and technology mapping.

Macii's position statement traces EDA's first wave to "algorithms and
tools for logic optimization (e.g., Espresso, Mini, MIS, SIS)".  This
package implements that lineage:

* :mod:`repro.synthesis.espresso` — two-level minimization with the
  classic EXPAND / IRREDUNDANT / REDUCE loop.
* :mod:`repro.synthesis.division` — algebraic division and kernel
  extraction (the MIS/SIS multi-level engine).
* :mod:`repro.synthesis.network` — multi-level Boolean networks and the
  optimization script (sweep, eliminate, extract, simplify).
* :mod:`repro.synthesis.rewrite` — AIG balancing, refactoring, and
  cut-based rewriting (the 2010s generation of optimizers).
* :mod:`repro.synthesis.mapping` — cut-based technology mapping onto a
  :class:`~repro.netlist.CellLibrary` in area or delay mode.
* :mod:`repro.synthesis.sizing` — post-mapping gate sizing and multi-Vt
  assignment.
* :mod:`repro.synthesis.flow` — era-calibrated synthesis flows ("2006"
  vs "2016") used by the E1 decade-of-improvement experiment.
"""

from repro.synthesis.espresso import espresso, espresso_tt
from repro.synthesis.division import (
    Sop,
    algebraic_divide,
    factor_literal_count,
    kernels,
    sop_from_cover,
    sop_literal_count,
    sop_to_cover,
)
from repro.synthesis.bdd import BddManager, check_equivalence
from repro.synthesis.mig import Mig, aig_adder, mig_adder, mig_from_aig
from repro.synthesis.network import LogicNetwork, LogicNode
from repro.synthesis.retiming import (
    RetimingGraph,
    retiming_graph_from_netlist,
)
from repro.synthesis.sat import Cnf, SatSolver, sat_check_equivalence
from repro.synthesis.rewrite import balance, refactor, rewrite
from repro.synthesis.mapping import map_aig, trivial_map
from repro.synthesis.sizing import assign_vt, size_gates
from repro.synthesis.flow import SynthesisFlow, SynthesisResult

__all__ = [
    "espresso",
    "espresso_tt",
    "Sop",
    "algebraic_divide",
    "kernels",
    "sop_from_cover",
    "sop_to_cover",
    "sop_literal_count",
    "factor_literal_count",
    "LogicNetwork",
    "LogicNode",
    "Mig",
    "mig_from_aig",
    "mig_adder",
    "aig_adder",
    "BddManager",
    "check_equivalence",
    "Cnf",
    "SatSolver",
    "sat_check_equivalence",
    "RetimingGraph",
    "retiming_graph_from_netlist",
    "balance",
    "refactor",
    "rewrite",
    "map_aig",
    "trivial_map",
    "size_gates",
    "assign_vt",
    "SynthesisFlow",
    "SynthesisResult",
]
