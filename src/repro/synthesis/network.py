"""Multi-level Boolean networks and the SIS-style optimization script.

A :class:`LogicNetwork` is a DAG of named nodes, each computing a
sum-of-products over other nodes / primary inputs.  The optimization
script mirrors SIS's ``script.rugged`` structure:

* ``sweep``      — remove constant and single-literal (buffer) nodes;
* ``eliminate``  — collapse nodes whose extraction value is negative;
* ``extract``    — pull out common kernels as new nodes;
* ``simplify``   — Espresso each node's SOP.

The network converts to an :class:`~repro.netlist.Aig` for mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.aig import AIG_FALSE, AIG_TRUE, Aig, lit_not
from repro.netlist.cubes import Cover
from repro.synthesis.division import (
    Sop,
    algebraic_divide,
    best_common_kernel,
    sop_from_cover,
    sop_literal_count,
    sop_support,
    sop_to_cover,
)
from repro.synthesis.espresso import espresso


@dataclass
class LogicNode:
    """One internal node: ``name = SOP over fanin names``."""

    name: str
    sop: Sop

    def support(self) -> set:
        return sop_support(self.sop)

    def literal_count(self) -> int:
        return sop_literal_count(self.sop)


class LogicNetwork:
    """A combinational multi-level network of SOP nodes."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.nodes: dict[str, LogicNode] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, name: str) -> str:
        if name in self.nodes or name in self.inputs:
            raise ValueError(f"name {name!r} already used")
        self.inputs.append(name)
        return name

    def add_node(self, name: str, sop: Sop) -> LogicNode:
        if name in self.nodes or name in self.inputs:
            raise ValueError(f"name {name!r} already used")
        node = LogicNode(name, [frozenset(c) for c in sop])
        self.nodes[name] = node
        return node

    def set_output(self, name: str) -> None:
        if name not in self.nodes and name not in self.inputs:
            raise KeyError(f"unknown signal {name!r}")
        self.outputs.append(name)

    def fresh_name(self, prefix: str = "k") -> str:
        while True:
            self._counter += 1
            cand = f"{prefix}{self._counter}"
            if cand not in self.nodes and cand not in self.inputs:
                return cand

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def literal_count(self) -> int:
        """Total literals over all nodes — the network cost function."""
        return sum(n.literal_count() for n in self.nodes.values())

    def node_count(self) -> int:
        return len(self.nodes)

    def fanout_counts(self) -> dict:
        """name -> number of nodes (plus outputs) reading it."""
        counts = {n: 0 for n in list(self.nodes) + self.inputs}
        for node in self.nodes.values():
            for dep in node.support():
                counts[dep] = counts.get(dep, 0) + 1
        for o in self.outputs:
            counts[o] = counts.get(o, 0) + 1
        return counts

    def topological_order(self) -> list:
        """Node names, fanins before fanouts; raises on cycles."""
        state: dict[str, int] = {}
        order: list[str] = []

        def visit(name: str) -> None:
            if name in self.inputs or name not in self.nodes:
                return
            mark = state.get(name, 0)
            if mark == 1:
                raise ValueError("cycle in logic network")
            if mark == 2:
                return
            state[name] = 1
            for dep in sorted(self.nodes[name].support()):
                visit(dep)
            state[name] = 2
            order.append(name)

        for name in sorted(self.nodes):
            visit(name)
        return order

    def depth(self) -> int:
        """Maximum node depth from the inputs."""
        level = {i: 0 for i in self.inputs}
        for name in self.topological_order():
            sup = self.nodes[name].support()
            level[name] = 1 + max((level.get(s, 0) for s in sup), default=0)
        return max((level.get(o, 0) for o in self.outputs), default=0)

    # ------------------------------------------------------------------
    # Optimization passes
    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Remove buffer/constant nodes by substitution; returns count."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for name in list(self.nodes):
                node = self.nodes[name]
                if name in self.outputs:
                    continue
                if len(node.sop) == 1 and len(node.sop[0]) == 1:
                    ((dep, phase),) = node.sop[0]
                    if phase:  # pure buffer: name == dep
                        self._substitute(name, dep)
                        del self.nodes[name]
                        removed += 1
                        changed = True
                elif not node.sop:
                    # Constant 0 node: propagate by deleting cubes that
                    # use it positively, dropping negative literals.
                    self._substitute_const(name, False)
                    del self.nodes[name]
                    removed += 1
                    changed = True
        return removed

    def _substitute(self, old: str, new: str) -> None:
        for node in self.nodes.values():
            new_sop = []
            for cube in node.sop:
                if (old, True) in cube:
                    cube = (cube - {(old, True)}) | {(new, True)}
                if (old, False) in cube:
                    cube = (cube - {(old, False)}) | {(new, False)}
                new_sop.append(cube)
            node.sop = new_sop

    def _substitute_const(self, name: str, value: bool) -> None:
        for node in self.nodes.values():
            new_sop = []
            for cube in node.sop:
                if (name, not value) in cube:
                    continue  # cube is false
                cube = cube - {(name, value)}
                new_sop.append(cube)
            node.sop = new_sop

    def eliminate(self, threshold: int = 0) -> int:
        """Collapse nodes whose extraction value <= threshold.

        The value of keeping node n with f fanouts and l literals is
        ``(f - 1) * (l - 1) - 1`` (literals saved by sharing); nodes at
        or below the threshold are inlined into their fanouts, as in
        SIS ``eliminate``.
        """
        eliminated = 0
        changed = True
        while changed:
            changed = False
            fan = self.fanout_counts()
            for name in list(self.nodes):
                if name in self.outputs:
                    continue
                node = self.nodes[name]
                f = fan.get(name, 0)
                lits = node.literal_count()
                value = (f - 1) * (lits - 1) - 1
                if value <= threshold and self._inline(name):
                    del self.nodes[name]
                    eliminated += 1
                    changed = True
                    fan = self.fanout_counts()
        return eliminated

    def _inline(self, name: str) -> bool:
        """Substitute node ``name`` into all its readers.

        Only positive uses can be inlined algebraically; if the node is
        read complemented anywhere, inlining is skipped (returns False).
        """
        node = self.nodes[name]
        for reader in self.nodes.values():
            for cube in reader.sop:
                if (name, False) in cube:
                    return False
        for reader in self.nodes.values():
            if reader.name == name:
                continue
            new_sop = []
            for cube in reader.sop:
                if (name, True) in cube:
                    rest = cube - {(name, True)}
                    for sub in node.sop:
                        merged = rest | sub
                        if not _cube_contradicts(merged):
                            new_sop.append(merged)
                else:
                    new_sop.append(cube)
            reader.sop = _dedupe_sop(new_sop)
        return True

    def extract(self, max_kernels: int = 50) -> int:
        """Greedy common-kernel extraction; returns kernels created."""
        created = 0
        for _ in range(max_kernels):
            sops = {n.name: n.sop for n in self.nodes.values()
                    if len(n.sop) >= 2}
            best = best_common_kernel(sops)
            if best is None:
                break
            kernel, value, users = best
            kname = self.fresh_name("k")
            self.add_node(kname, kernel)
            for user, _ in users.items():
                node = self.nodes[user]
                quotient, remainder = algebraic_divide(node.sop, kernel)
                if not quotient:
                    continue
                new_sop = list(remainder)
                for qc in quotient:
                    new_sop.append(qc | {(kname, True)})
                node.sop = _dedupe_sop(new_sop)
            created += 1
        return created

    def simplify(self) -> int:
        """Espresso every node's SOP; returns literals saved."""
        saved = 0
        for node in self.nodes.values():
            names = sorted(node.support())
            if not names or len(names) > 12:
                continue
            cover = sop_to_cover(node.sop, names)
            before = cover.literal_count()
            minimized = espresso(cover)
            after = minimized.literal_count()
            if after < before or minimized.cube_count() < cover.cube_count():
                node.sop = sop_from_cover(minimized, names)
                saved += before - after
        return saved

    def optimize(self, effort: str = "high") -> dict:
        """Run the full script; returns a pass-by-pass literal report."""
        report = {"initial": self.literal_count()}
        self.sweep()
        report["sweep"] = self.literal_count()
        self.simplify()
        report["simplify"] = self.literal_count()
        if effort in ("medium", "high"):
            self.extract()
            report["extract"] = self.literal_count()
            self.eliminate(threshold=0 if effort == "high" else -1)
            report["eliminate"] = self.literal_count()
            self.simplify()
            report["resimplify"] = self.literal_count()
        if effort == "high":
            self.extract()
            self.sweep()
            report["final"] = self.literal_count()
        return report

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_aig(self) -> Aig:
        """Lower the network to an AIG (AND/OR trees per SOP)."""
        aig = Aig(len(self.inputs), list(self.inputs))
        lit_of: dict[str, int] = {
            name: aig.input_lit(i) for i, name in enumerate(self.inputs)
        }
        for name in self.topological_order():
            node = self.nodes[name]
            cube_lits = []
            for cube in node.sop:
                acc = AIG_TRUE
                for dep, phase in sorted(cube):
                    lit = lit_of[dep]
                    acc = aig.and_(acc, lit if phase else lit_not(lit))
                cube_lits.append(acc)
            acc = AIG_FALSE
            for cl in cube_lits:
                acc = aig.or_(acc, cl)
            lit_of[name] = acc
        for out in self.outputs:
            aig.add_output(lit_of[out], out)
        return aig

    @staticmethod
    def from_aig(aig: Aig) -> "LogicNetwork":
        """Import an AIG as a network of two-literal AND nodes."""
        net = LogicNetwork()
        for name in aig.input_names:
            net.add_input(name)
        name_of = {i + 1: aig.input_names[i] for i in range(aig.num_inputs)}
        for n in range(aig.num_inputs + 1, aig.num_nodes):
            a, b = aig.fanins(n)
            cube = frozenset({
                (name_of[a >> 1], not (a & 1)),
                (name_of[b >> 1], not (b & 1)),
            })
            nm = f"n{n}"
            net.add_node(nm, [cube])
            name_of[n] = nm
        for lit, oname in zip(aig.outputs, aig.output_names):
            src = name_of.get(lit >> 1)
            if src is None:  # constant output
                node = net.add_node(net.fresh_name("const"),
                                    [] if lit == AIG_FALSE else [frozenset()])
                src = node.name
                net.set_output(src)
                continue
            if lit & 1:
                inv = net.fresh_name("inv")
                net.add_node(inv, [frozenset({(src, False)})])
                src = inv
            net.set_output(src)
        return net

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogicNetwork({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.nodes)} nodes, {self.literal_count()} lits)"
        )


def _cube_contradicts(cube: frozenset) -> bool:
    names = {}
    for name, phase in cube:
        if names.get(name, phase) != phase:
            return True
        names[name] = phase
    return False


def _dedupe_sop(sop: Sop) -> Sop:
    uniq = []
    seen = set()
    for cube in sop:
        if cube in seen:
            continue
        seen.add(cube)
        uniq.append(cube)
    # Single-cube containment: drop cubes that contain another cube.
    kept = []
    for cube in sorted(uniq, key=len):
        if not any(k <= cube for k in kept):
            kept.append(cube)
    return kept
