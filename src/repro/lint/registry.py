"""The rule registry: one namespace for every lint rule.

A :class:`Rule` couples an id (``NET-002``), a default severity, and a
check function.  Check functions are generators yielding
:class:`Violation` records — (location, message, optional severity
override) — and the driver stamps them into full
:class:`~repro.lint.report.Finding` objects, so rule ids and
severities cannot drift between the rule table and its output.

Rules register themselves into the module-global :data:`REGISTRY` via
the :func:`rule` decorator at import time; callers can also build
private registries for experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

from repro.lint.report import Finding, LintReport, Severity, Waivers

#: What a check function yields: (location, message) or
#: (location, message, severity-override).
Violation = tuple

CheckFn = Callable[..., Iterable[Violation]]
_F = TypeVar("_F", bound=CheckFn)


class LintError(RuntimeError):
    """Base class for lint subsystem failures."""


class LintGateError(LintError):
    """A strict lint gate refused to run a flow.

    Carries the offending :class:`~repro.lint.report.LintReport` so
    callers (and tests) can inspect exactly which rules fired where.
    """

    def __init__(self, report: LintReport) -> None:
        self.report = report
        heads = "; ".join(str(f) for f in report.errors[:5])
        more = len(report.errors) - 5
        if more > 0:
            heads += f"; ... {more} more"
        super().__init__(
            f"lint gate: {len(report.errors)} error finding(s) on "
            f"{report.subject or '<subject>'}: {heads}")


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    severity: Severity
    title: str
    scope: str               # "netlist" | "hierarchy" | "flow" | "purity"
    check: CheckFn

    def findings(self, ctx: object, subject: str,
                 max_findings: int | None = None
                 ) -> tuple[list[Finding], int]:
        """Run the check; returns (findings, suppressed-count)."""
        out: list[Finding] = []
        suppressed = 0
        for violation in self.check(ctx):
            location, message = violation[0], violation[1]
            severity = violation[2] if len(violation) > 2 \
                else self.severity
            if max_findings is not None and len(out) >= max_findings:
                suppressed += 1
                continue
            out.append(Finding(rule_id=self.id, severity=severity,
                               message=message, subject=subject,
                               location=location))
        return out, suppressed


class RuleRegistry:
    """Rules indexed by id, filterable by scope."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __getitem__(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"no lint rule {rule_id!r} registered") \
                from None

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def add(self, new_rule: Rule) -> Rule:
        """Register a rule; duplicate ids are an error."""
        if new_rule.id in self._rules:
            raise ValueError(f"duplicate lint rule id {new_rule.id!r}")
        self._rules[new_rule.id] = new_rule
        return new_rule

    def rules(self, scope: str | None = None,
              only: Iterable[str] | None = None) -> list[Rule]:
        """Registered rules, optionally filtered by scope and ids."""
        wanted = None if only is None else set(only)
        return [r for r in self._rules.values()
                if (scope is None or r.scope == scope)
                and (wanted is None or r.id in wanted)]

    def ids(self, scope: str | None = None) -> list[str]:
        return [r.id for r in self.rules(scope)]

    def run(self, scope: str, ctx: object, subject: str, *,
            only: Iterable[str] | None = None,
            waivers: Waivers | None = None,
            max_findings_per_rule: int | None = 50) -> LintReport:
        """Run every rule of ``scope`` over ``ctx`` into one report."""
        t0 = time.perf_counter()
        report = LintReport(subject=subject)
        for checked in self.rules(scope, only):
            found, suppressed = checked.findings(
                ctx, subject, max_findings_per_rule)
            report.extend(found)
            if suppressed:
                report.truncated[checked.id] = suppressed
        if waivers is not None:
            report.findings = waivers.apply(report.findings)
        report.wall_s = time.perf_counter() - t0
        return report


#: The default registry every ``lint_*`` entry point consults.
REGISTRY = RuleRegistry()


def rule(rule_id: str, severity: Severity, title: str, scope: str,
         registry: RuleRegistry = REGISTRY) -> Callable[[_F], _F]:
    """Decorator: register ``fn`` as the check of a new rule."""
    def decorate(fn: _F) -> _F:
        registry.add(Rule(id=rule_id, severity=severity, title=title,
                          scope=scope, check=fn))
        return fn
    return decorate
