"""Command-line netlist linter.

Lint a structural-Verilog netlist (the format
:func:`repro.netlist.io.write_verilog` emits) against the full
netlist rule set::

    PYTHONPATH=src python -m repro.lint design.v --node 28nm
    PYTHONPATH=src python -m repro.lint design.v --json > lint.json
    PYTHONPATH=src python -m repro.lint design.v --sarif lint.sarif \\
        --waivers waivers.txt

Exit status: 0 when the report is clean (no unwaived errors), 1 when
error findings gate, 2 on usage/parse problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.netlist_rules import LintConfig, lint_netlist
from repro.lint.report import LintReport, Waivers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Netlist linter: structural signoff checks for "
                    "mapped gate-level Verilog.")
    parser.add_argument("netlist", help="structural Verilog file")
    parser.add_argument("--node", default="28nm",
                        help="technology node for the cell library "
                             "(default: 28nm)")
    parser.add_argument("--waivers", default=None,
                        help="waiver file (RULE LOCATION_GLOB # why)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="also write a SARIF 2.1.0 report")
    parser.add_argument("--max-findings", type=int, default=50,
                        help="per-rule finding cap (default: 50)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.netlist import build_library
    from repro.netlist.io import read_verilog
    from repro.tech import get_node

    try:
        text = Path(args.netlist).read_text()
    except OSError as err:
        print(f"error: cannot read {args.netlist}: {err}",
              file=sys.stderr)
        return 2
    library = build_library(get_node(args.node),
                            vt_flavors=("lvt", "rvt", "hvt"))
    try:
        netlist = read_verilog(text, library)
    except (ValueError, KeyError) as err:
        print(f"error: cannot parse {args.netlist}: {err}",
              file=sys.stderr)
        return 2

    waivers = Waivers.load(args.waivers) if args.waivers else None
    config = LintConfig(max_findings_per_rule=args.max_findings)
    report: LintReport = lint_netlist(netlist, config=config,
                                      waivers=waivers)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(report.to_sarif(), indent=1))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
