"""Flow static verification: check a DAG before executing anything.

A flow that references a missing producer, hides a dependency cycle,
misspells a knob, or reads an undeclared ``ctx`` key fails *minutes or
hours* into a run — or worse, silently widens/narrows its cache key
and replays wrong results.  Every one of those is statically decidable
from the :class:`~repro.orchestrate.dag.FlowDAG` alone, so
:func:`lint_flow` decides them up front; the orchestrator's pre-run
gate calls it on every ``run()``.

Rule table
----------

=========  ========  ===================================================
FLOW-001   error     stage depends on a producer that does not exist
FLOW-002   error     dependency cycle among stages
FLOW-003   warning   dead stage (transitively behind a missing producer)
FLOW-004   error     knob name is not an attribute of the options object
FLOW-005   error     declared param is not provided by the run context
FLOW-006   error     stage body reads a ctx key it never declared
FLOW-007   info      declared dep/param never read (cache key wider
                     than necessary)
PURE-xxx   (varies)  cache-soundness hazards, via :mod:`.purity`
=========  ========  ===================================================

FLOW-006/007 parse the stage function's source; stages whose ``ctx``
is accessed dynamically (a non-literal subscript) are skipped rather
than guessed at.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import time
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Iterator

from repro.lint.purity import check_flow_purity
from repro.lint.registry import REGISTRY, Violation, rule
from repro.lint.report import LintReport, Severity, Waivers

#: Parameters every implement-flow execution provides to its stages.
DEFAULT_RUN_PARAMS = ("subject", "library", "options")


@dataclass
class FlowLintContext:
    """Shared facts the flow rules read: the DAG plus run bindings."""

    dag: Any
    options: Any = None
    params: tuple[str, ...] = DEFAULT_RUN_PARAMS
    _ctx_reads: dict[str, tuple[set[str], bool] | None] = \
        field(default_factory=dict)

    def stages(self) -> list[Any]:
        return list(self.dag.stages.values())

    def known(self, name: str) -> bool:
        return name in self.dag.stages

    def missing_behind(self) -> dict[str, list[str]]:
        """stage -> unknown producers in its transitive dep closure."""
        out: dict[str, list[str]] = {}

        def walk(name: str, seen: set[str]) -> list[str]:
            if name in out:
                return out[name]
            if name in seen:       # cycle: FLOW-002's business
                return []
            seen.add(name)
            stage = self.dag.stages.get(name)
            if stage is None:
                return [name]
            missing: list[str] = []
            for dep in stage.deps:
                if not self.known(dep):
                    missing.append(dep)
                else:
                    missing.extend(walk(dep, seen))
            out[name] = sorted(set(missing))
            return out[name]

        for stage in self.stages():
            walk(stage.name, set())
        return out

    def ctx_reads(self, stage: Any) -> tuple[set[str], bool] | None:
        """Literal ``ctx[...]`` keys the stage function reads.

        Returns ``(keys, exhaustive)`` — ``exhaustive`` is False when
        any access used a non-literal subscript — or None when the
        source is unavailable.  Memoized per stage.
        """
        if stage.name not in self._ctx_reads:
            self._ctx_reads[stage.name] = _literal_ctx_reads(stage.fn)
        return self._ctx_reads[stage.name]


def _literal_ctx_reads(fn: Any) -> tuple[set[str], bool] | None:
    """Parse ``fn`` for subscripts/``get`` calls on its ctx argument."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None
    func = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            func = node
            break
    if func is None:
        return None
    args = func.args
    positional = [*args.posonlyargs, *args.args]
    if not positional:
        return None
    ctx_name = positional[0].arg
    keys: set[str] = set()
    exhaustive = True
    consumed: set[int] = set()   # Name nodes inside recognized reads
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == ctx_name:
            consumed.add(id(node.value))
            if isinstance(node.slice, ast.Constant) and \
                    isinstance(node.slice.value, str):
                keys.add(node.slice.value)
            else:
                exhaustive = False
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "get" and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == ctx_name:
            consumed.add(id(node.func.value))
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                keys.add(node.args[0].value)
            else:
                exhaustive = False
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == ctx_name and \
                isinstance(node.ctx, ast.Load) and \
                id(node) not in consumed:
            # ctx escapes whole (e.g. to a helper): anything could be
            # read downstream.
            exhaustive = False
    return keys, exhaustive


# ----------------------------------------------------------------------
# Rules


@rule("FLOW-001", Severity.ERROR, "missing artifact producer", "flow")
def missing_producer(ctx: FlowLintContext) -> Iterator[Violation]:
    """Every declared dependency must name a registered stage."""
    for stage in ctx.stages():
        for dep in stage.deps:
            if not ctx.known(dep):
                yield (stage.name,
                       f"stage {stage.name!r} depends on "
                       f"{dep!r}, which no stage produces")


@rule("FLOW-002", Severity.ERROR, "stage dependency cycle", "flow")
def stage_cycle(ctx: FlowLintContext) -> Iterator[Violation]:
    """Kahn over the known-stage edges; report whatever never frees."""
    indeg: dict[str, int] = {}
    dependents: dict[str, list[str]] = {}
    for stage in ctx.stages():
        known_deps = [d for d in stage.deps if ctx.known(d)]
        indeg[stage.name] = len(known_deps)
        for dep in known_deps:
            dependents.setdefault(dep, []).append(stage.name)
    ready = [n for n, d in indeg.items() if d == 0]
    while ready:
        name = ready.pop()
        for dep in dependents.get(name, ()):
            indeg[dep] -= 1
            if indeg[dep] == 0:
                ready.append(dep)
    stuck = sorted(n for n, d in indeg.items() if d > 0)
    if stuck:
        yield (stuck[0],
               f"dependency cycle among stages: {', '.join(stuck)}")


@rule("FLOW-003", Severity.WARNING, "dead stage", "flow")
def dead_stage(ctx: FlowLintContext) -> Iterator[Violation]:
    """A stage behind a missing producer can never execute."""
    for name, missing in sorted(ctx.missing_behind().items()):
        stage = ctx.dag.stages.get(name)
        if stage is None or not missing:
            continue
        direct = set(stage.deps) & set(missing)
        if direct:
            continue               # FLOW-001 already names this stage
        yield (name,
               f"stage {name!r} is dead: it sits behind missing "
               f"producer(s) {', '.join(missing)} and will be "
               f"skipped every run")


@rule("FLOW-004", Severity.ERROR, "unknown knob name", "flow")
def unknown_knob(ctx: FlowLintContext) -> Iterator[Violation]:
    """Knob names must be real attributes of the options object.

    A typo here narrows the cache key to a nonexistent attribute and
    raises only when the stage is first executed — or worse, with a
    default-carrying options type, silently caches under the wrong
    key.
    """
    options = ctx.options
    if options is None:
        return
    if is_dataclass(options):
        valid = {f.name for f in fields(options)}
    else:
        valid = {a for a in dir(options) if not a.startswith("_")}
    for stage in ctx.stages():
        for knob in stage.knobs:
            if knob not in valid:
                yield (stage.name,
                       f"stage {stage.name!r} declares knob "
                       f"{knob!r}, not an attribute of "
                       f"{type(options).__name__}")


@rule("FLOW-005", Severity.ERROR, "unprovided run parameter", "flow")
def unprovided_param(ctx: FlowLintContext) -> Iterator[Violation]:
    """Declared params must exist in the run's parameter bindings."""
    provided = set(ctx.params)
    for stage in ctx.stages():
        for param in stage.params:
            if param not in provided:
                yield (stage.name,
                       f"stage {stage.name!r} declares param "
                       f"{param!r}, but the run only provides "
                       f"{sorted(provided)}")


@rule("FLOW-006", Severity.ERROR, "undeclared ctx read", "flow")
def undeclared_ctx_read(ctx: FlowLintContext) -> Iterator[Violation]:
    """The stage body reads a ctx key outside deps + params.

    The executor builds ``ctx`` from exactly the declared keys, so
    this is a guaranteed KeyError — discovered here instead of
    mid-run.
    """
    for stage in ctx.stages():
        reads = ctx.ctx_reads(stage)
        if reads is None:
            continue
        declared = set(stage.deps) | set(stage.params)
        for key in sorted(reads[0] - declared):
            yield (stage.name,
                   f"stage {stage.name!r} reads ctx[{key!r}] but "
                   f"declares only deps={list(stage.deps)} "
                   f"params={list(stage.params)}")


@rule("FLOW-007", Severity.INFO, "unread declared input", "flow")
def unread_declared_input(ctx: FlowLintContext) -> Iterator[Violation]:
    """Declared but never-read inputs widen the cache key for nothing.

    Only reported when the stage's ctx accesses were exhaustively
    literal — a helper receiving the whole ctx suppresses the rule.
    """
    for stage in ctx.stages():
        reads = ctx.ctx_reads(stage)
        if reads is None or not reads[1]:
            continue
        declared = set(stage.deps) | set(stage.params)
        for key in sorted(declared - reads[0]):
            yield (stage.name,
                   f"stage {stage.name!r} declares {key!r} but its "
                   f"body never reads ctx[{key!r}]; cached results "
                   f"invalidate more often than needed")


# ----------------------------------------------------------------------
# Entry point


def lint_flow(dag: Any, options: Any = None, *,
              params: tuple[str, ...] = DEFAULT_RUN_PARAMS,
              waivers: Waivers | None = None,
              purity: bool = True,
              only: list[str] | None = None,
              subject: str = "flow") -> LintReport:
    """Statically verify a flow DAG (and its stage functions).

    Flow-scope rules need only the DAG plus the run bindings
    (``options``, ``params``); with ``purity`` (the default) every
    stage function is additionally AST-checked for cache-soundness
    hazards via :func:`repro.lint.purity.check_flow_purity`.
    """
    t0 = time.perf_counter()
    ctx = FlowLintContext(dag=dag, options=options,
                          params=tuple(params))
    report = REGISTRY.run("flow", ctx, subject, only=only)
    if purity:
        purity_report = check_flow_purity(dag)
        for finding in purity_report.findings:
            report.findings.append(finding)
    if waivers is not None:
        report.findings = waivers.apply(report.findings)
    report.wall_s = time.perf_counter() - t0
    return report
