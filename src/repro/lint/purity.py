"""AST-based cache-soundness (purity) checks for stage functions.

The orchestrator's content-addressed cache assumes a stage's output is
a pure function of its declared inputs.  A stage that reads the wall
clock, draws unseeded randomness, consults ``os.environ``, or mutates
captured module state silently breaks that assumption — its cache key
no longer identifies its output, and every replay is a potential wrong
answer.  These hazards are *statically* detectable: this module parses
each stage function's source and flags them before a run executes.

The analysis is shallow by design: it inspects the stage function's
own body (helpers it calls are not followed), which is exactly the
layer where flow authors wire knobs to kernels.  Seeded randomness
(``np.random.default_rng(seed)``, ``random.Random(seed)``) is pure and
passes; only the unseeded forms are hazards.

An inline waiver comment on the offending line::

    limit = MAX_JOBS_HINT          # lint: waive PURE-004 audited

keeps the finding in the report but marks it waived, matching the
file-based :class:`~repro.lint.report.Waivers` semantics.

Rule table
----------

=========  ========  ====================================================
PURE-001   error     wall-clock read (``time.time`` family, ``datetime``)
PURE-002   error     unseeded randomness (``random.*``, ``np.random.*``)
PURE-003   error     environment read (``os.environ``, ``os.getenv``)
PURE-004   warning   mutation of captured module-global state
PURE-005   warning   closure / mutable-default state outside the key
PURE-000   info      source unavailable (builtin or C-implemented fn)
=========  ========  ====================================================
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
import types
from typing import Any, Callable, Iterable

from repro.lint.report import Finding, LintReport, Severity

_WAIVE_RE = re.compile(r"#\s*lint:\s*waive\s+(?P<ids>[A-Z]+-[0-9]+"
                       r"(?:[ ,]+[A-Z]+-[0-9]+)*)(?P<reason>[^#]*)")

#: Dotted call targets that read the wall clock.
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: Dotted call targets that are nondeterministic however called.
_RANDOM_CALLS = {
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.gauss",
    "random.normalvariate", "random.getrandbits", "random.betavariate",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow",
    "numpy.random.random", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.choice",
    "numpy.random.normal", "numpy.random.uniform",
    "numpy.random.permutation", "numpy.random.shuffle",
}

#: Dotted call targets that are pure *only when seeded* (arguments
#: present); a bare call falls back to OS entropy.
_SEEDABLE_CALLS = {
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
}

#: Dotted prefixes whose attribute/subscript *read* is a hazard.
_ENV_READS = ("os.environ", "os.getenv")

#: Methods that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "write",
}


def _qualify(fn: Callable[..., object], node: ast.AST,
             local_imports: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain to a dotted module path.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` by
    looking the root name up in the function's globals (so aliases
    resolve robustly) or in imports local to the function body.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = current.id
    module = local_imports.get(root)
    if module is None:
        bound = getattr(fn, "__globals__", {}).get(root)
        if isinstance(bound, types.ModuleType):
            module = bound.__name__
        elif callable(bound) and not parts:
            # ``from random import random`` style direct import.
            mod_name = getattr(bound, "__module__", "") or ""
            qualname = getattr(bound, "__qualname__", root)
            if mod_name.startswith("numpy.random"):
                mod_name = "numpy.random"
            return f"{mod_name}.{qualname}" if mod_name else None
    if module is None:
        return None
    return ".".join([module, *reversed(parts)]) if parts else module


class _PurityVisitor(ast.NodeVisitor):
    """Walk one stage function's AST collecting purity hazards."""

    def __init__(self, fn: Callable[..., object]) -> None:
        self.fn = fn
        self.hazards: list[tuple[str, int, str]] = []
        self.local_imports: dict[str, str] = {}
        self.local_names: set[str] = set()
        self.global_names: set[str] = set()
        self._depth = 0

    # -- bookkeeping ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node: ast.FunctionDef
                        | ast.AsyncFunctionDef) -> None:
        if self._depth == 0:
            args = node.args
            for arg in (*args.posonlyargs, *args.args,
                        *args.kwonlyargs):
                self.local_names.add(arg.arg)
            if args.vararg:
                self.local_names.add(args.vararg.arg)
            if args.kwarg:
                self.local_names.add(args.kwarg.arg)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.local_imports[alias.asname or
                               alias.name.split(".")[0]] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.local_imports[alias.asname or alias.name] = \
                f"{node.module}.{alias.name}" if node.module else \
                alias.name

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)
        self.hazards.append((
            "PURE-004", node.lineno,
            f"stage declares global {', '.join(node.names)}: "
            "mutations escape the cache key"))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_binding(target)
            self._check_state_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_state_write(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._note_binding(node.target)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._note_binding(item.optional_vars)
        self.generic_visit(node)

    def _note_binding(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_binding(element)

    # -- hazard detection ----------------------------------------------

    def _is_captured(self, name: str) -> bool:
        """A name bound outside the stage function's own scope."""
        if name in self.local_names or name in self.local_imports:
            return False
        bound = getattr(self.fn, "__globals__", {}).get(name)
        return bound is not None and \
            not isinstance(bound, types.ModuleType) and \
            not callable(bound)

    def _check_state_write(self, target: ast.AST) -> None:
        """Subscript/attribute stores into captured objects."""
        current = target
        while isinstance(current, (ast.Subscript, ast.Attribute)):
            current = current.value
        if isinstance(current, ast.Name) and \
                current is not target and \
                self._is_captured(current.id):
            self.hazards.append((
                "PURE-004", getattr(target, "lineno", 0),
                "stage writes into captured global "
                f"{current.id!r}: the cache cannot see it"))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _qualify(self.fn, node.func, self.local_imports)
        if dotted is not None:
            if dotted in _CLOCK_CALLS:
                self.hazards.append((
                    "PURE-001", node.lineno,
                    f"stage reads the wall clock via {dotted}()"))
            elif dotted in _RANDOM_CALLS:
                self.hazards.append((
                    "PURE-002", node.lineno,
                    "stage draws unseeded randomness via "
                    f"{dotted}()"))
            elif dotted in _SEEDABLE_CALLS and not node.args \
                    and not node.keywords:
                self.hazards.append((
                    "PURE-002", node.lineno,
                    f"{dotted}() without a seed falls back to OS "
                    "entropy; pass an explicit seed"))
            elif dotted == "os.getenv" or \
                    dotted.startswith("os.environ"):
                self.hazards.append((
                    "PURE-003", node.lineno,
                    f"stage reads the environment via {dotted}"))
        # Mutating method calls on captured globals.
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATORS:
            receiver = node.func.value
            while isinstance(receiver, (ast.Subscript, ast.Attribute)):
                receiver = receiver.value
            if isinstance(receiver, ast.Name) and \
                    self._is_captured(receiver.id):
                self.hazards.append((
                    "PURE-004", node.lineno,
                    "stage mutates captured global "
                    f"{receiver.id!r} via .{node.func.attr}()"))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            dotted = _qualify(self.fn, node.value, self.local_imports)
            if dotted is not None and dotted.startswith(_ENV_READS):
                self.hazards.append((
                    "PURE-003", node.lineno,
                    f"stage reads the environment via {dotted}[...]"))
        self.generic_visit(node)


def _inline_waivers(source: str, first_line: int
                    ) -> dict[int, tuple[set[str], str]]:
    """Per-line ``# lint: waive RULE-ID`` annotations in ``source``."""
    out: dict[int, tuple[set[str], str]] = {}
    for offset, line in enumerate(source.splitlines()):
        match = _WAIVE_RE.search(line)
        if match is not None:
            ids = set(re.split(r"[ ,]+", match.group("ids").strip()))
            out[first_line + offset] = (ids,
                                        match.group("reason").strip())
    return out


def _location(fn: Callable[..., object], lineno: int) -> str:
    module = getattr(fn, "__module__", "") or "<unknown>"
    qualname = getattr(fn, "__qualname__",
                       getattr(fn, "__name__", "<fn>"))
    return f"{module}.{qualname}:{lineno}"


def check_stage_purity(fn: Callable[..., object], *,
                       stage_name: str | None = None,
                       cacheable: bool = True) -> list[Finding]:
    """Statically check one stage function for cache-soundness hazards.

    Returns :class:`~repro.lint.report.Finding` records (empty when the
    function is clean).  For ``cacheable=False`` stages the hazards are
    downgraded to info: an uncached stage cannot poison the cache, the
    findings just document nondeterminism.  A function whose source is
    unavailable (builtins, C extensions) yields one info finding
    (PURE-000) rather than a false clean bill.
    """
    subject = stage_name or getattr(fn, "__name__", "<stage>")
    try:
        source = inspect.getsource(fn)
        first_line = inspect.getsourcelines(fn)[1]
    except (OSError, TypeError):
        return [Finding(
            rule_id="PURE-000", severity=Severity.INFO,
            message="source of stage function unavailable; purity "
                    "not statically checkable",
            subject=subject, location=_location(fn, 0))]
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError:           # pragma: no cover - getsource quirk
        return [Finding(
            rule_id="PURE-000", severity=Severity.INFO,
            message="stage function source did not parse standalone",
            subject=subject, location=_location(fn, first_line))]
    visitor = _PurityVisitor(fn)
    visitor.visit(tree)

    hazards = list(visitor.hazards)
    # Closure and mutable-default state ride the function object, not
    # the AST.
    closure = getattr(fn, "__closure__", None)
    if closure:
        freevars = getattr(fn.__code__, "co_freevars", ())
        hazards.append((
            "PURE-005", first_line,
            f"stage closes over {', '.join(freevars)}: closure state "
            "is invisible to the content-hash cache key"))
    for default in (getattr(fn, "__defaults__", None) or ()):
        if isinstance(default, (list, dict, set, bytearray)):
            hazards.append((
                "PURE-005", first_line,
                "mutable default argument "
                f"({type(default).__name__}) persists state across "
                "calls"))

    waivers = _inline_waivers(source, first_line)
    severities = {"PURE-001": Severity.ERROR,
                  "PURE-002": Severity.ERROR,
                  "PURE-003": Severity.ERROR,
                  "PURE-004": Severity.WARNING,
                  "PURE-005": Severity.WARNING}
    findings: list[Finding] = []
    for rule_id, rel_line, message in hazards:
        lineno = first_line + max(rel_line - 1, 0)
        severity = severities.get(rule_id, Severity.WARNING)
        if not cacheable and severity is not Severity.INFO:
            severity = Severity.INFO
            message += " (stage is not cacheable; informational)"
        waived = False
        reason = ""
        line_waiver = waivers.get(lineno)
        if line_waiver is not None and rule_id in line_waiver[0]:
            waived, reason = True, line_waiver[1]
        findings.append(Finding(
            rule_id=rule_id, severity=severity, message=message,
            subject=subject, location=_location(fn, lineno),
            waived=waived, waive_reason=reason))
    return findings


def check_flow_purity(dag: Any) -> LintReport:
    """Purity-check every stage function of a flow DAG."""
    report = LintReport(subject="flow-purity")
    stages: Iterable[Any] = dag.stages.values()
    for stage in stages:
        report.extend(check_stage_purity(
            stage.fn, stage_name=stage.name,
            cacheable=bool(stage.cacheable)))
    return report
