"""Lint findings, reports, waivers, and machine-readable export.

The common currency of :mod:`repro.lint`: every rule — netlist,
hierarchy, flow, or purity — emits :class:`Finding` records that a
:class:`LintReport` aggregates.  Reports export to JSON and a
SARIF-style dict so CI and dashboards consume the same data the
pre-run gate does, and a :class:`Waivers` set can mark known findings
as reviewed without deleting the evidence (the signoff-tool idiom:
waived violations stay in the report, they just stop gating).
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field, replace
from enum import Enum
from pathlib import Path
from typing import Iterable, Iterator

#: Version of the report wire format (JSON / SARIF export).
REPORT_SCHEMA_VERSION = 1


class Severity(str, Enum):
    """How bad a finding is.

    ``ERROR`` findings gate strict runs; ``WARNING`` and ``INFO`` are
    recorded but never block.  The ``str`` mixin keeps comparisons like
    ``finding.severity == "error"`` working.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` value for this severity."""
        return "note" if self is Severity.INFO else self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``location`` is rule-specific: a net or gate name for netlist
    rules, a stage name for flow rules, ``module.function:line`` for
    purity hazards.  ``waived`` findings stay in the report (and its
    exports) but do not count toward :attr:`LintReport.errors`.
    """

    rule_id: str
    severity: Severity
    message: str
    subject: str = ""        # design / flow the finding belongs to
    location: str = ""       # net, gate, stage, or source position
    waived: bool = False
    waive_reason: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "waived": self.waived,
            "waive_reason": self.waive_reason,
        }

    def __str__(self) -> str:
        flag = " (waived)" if self.waived else ""
        where = f" [{self.location}]" if self.location else ""
        return (f"{str(self.severity).upper():7s} {self.rule_id}"
                f"{where}: {self.message}{flag}")


@dataclass(frozen=True)
class Waiver:
    """One reviewed-and-accepted finding pattern.

    ``rule_id`` and ``location`` are shell globs (``fnmatch``), so one
    waiver can cover a family of findings (``NET-007`` on ``u_spare*``).
    """

    rule_id: str
    location: str = "*"
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        return (fnmatch.fnmatchcase(finding.rule_id, self.rule_id)
                and fnmatch.fnmatchcase(finding.location or "",
                                        self.location))


class Waivers:
    """An ordered set of :class:`Waiver` patterns.

    File format (one waiver per line)::

        # comment
        NET-007 u_spare*      # spare cells are intentionally dead
        PURE-005 *            # closures audited 2026-08

    Fields are whitespace-separated: rule glob, optional location glob
    (default ``*``), optional ``#``-prefixed reason.
    """

    def __init__(self, waivers: Iterable[Waiver] = ()) -> None:
        self.waivers: list[Waiver] = list(waivers)

    def __len__(self) -> int:
        return len(self.waivers)

    def __iter__(self) -> Iterator[Waiver]:
        return iter(self.waivers)

    def add(self, rule_id: str, location: str = "*",
            reason: str = "") -> "Waivers":
        """Register one waiver pattern; chainable."""
        self.waivers.append(Waiver(rule_id, location, reason))
        return self

    @classmethod
    def load(cls, path: str | Path) -> "Waivers":
        """Parse a waiver file (see class docstring for the format)."""
        out = cls()
        for raw in Path(path).read_text().splitlines():
            line, _, comment = raw.partition("#")
            fields_ = line.split()
            if not fields_:
                continue
            rule_glob = fields_[0]
            loc_glob = fields_[1] if len(fields_) > 1 else "*"
            out.add(rule_glob, loc_glob, comment.strip())
        return out

    def match(self, finding: Finding) -> Waiver | None:
        """The first waiver covering ``finding``, or None."""
        for waiver in self.waivers:
            if waiver.matches(finding):
                return waiver
        return None

    def apply(self, findings: Iterable[Finding]) -> list[Finding]:
        """Copy ``findings`` with matching ones marked waived."""
        out: list[Finding] = []
        for finding in findings:
            waiver = self.match(finding)
            if waiver is not None and not finding.waived:
                finding = replace(finding, waived=True,
                                  waive_reason=waiver.reason)
            out.append(finding)
        return out


@dataclass
class LintReport:
    """All findings of one lint run over one subject.

    ``ok`` is the gating predicate: no *unwaived* error-severity
    findings.  ``truncated`` names rules whose findings were capped by
    ``max_findings_per_rule`` (so a flood of dead-cone warnings cannot
    hide that the report is incomplete).
    """

    subject: str = ""
    findings: list[Finding] = field(default_factory=list)
    wall_s: float = 0.0
    truncated: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    # -- filtering -----------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Finding]:
        """Unwaived findings at exactly ``severity``."""
        return [f for f in self.findings
                if f.severity is severity and not f.waived]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Finding]:
        return self.by_severity(Severity.INFO)

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        """True when nothing error-severity survived waiving."""
        return not self.errors

    def rules_hit(self) -> list[str]:
        """Distinct rule ids with at least one unwaived finding."""
        seen: dict[str, None] = {}
        for finding in self.findings:
            if not finding.waived:
                seen.setdefault(finding.rule_id)
        return list(seen)

    # -- composition ---------------------------------------------------

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "LintReport") -> "LintReport":
        """Fold another report's findings into this one; chainable."""
        self.findings.extend(other.findings)
        self.wall_s += other.wall_s
        for rule_id, count in other.truncated.items():
            self.truncated[rule_id] = \
                self.truncated.get(rule_id, 0) + count
        return self

    # -- rendering -----------------------------------------------------

    def counts(self) -> dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "waived": len(self.waived),
        }

    def summary(self) -> str:
        """One-line report string."""
        c = self.counts()
        gate = "clean" if self.ok else "GATING"
        return (f"lint {self.subject or '<subject>'}: "
                f"{c['errors']} errors, {c['warnings']} warnings, "
                f"{c['infos']} info, {c['waived']} waived "
                f"({gate}, {self.wall_s * 1000:.1f} ms)")

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [self.summary()]
        lines.extend(str(f) for f in self.findings)
        for rule_id, count in sorted(self.truncated.items()):
            lines.append(
                f"...     {rule_id}: {count} further finding(s) "
                f"suppressed (raise max_findings_per_rule to see all)")
        return "\n".join(lines)

    # -- machine-readable export ---------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "subject": self.subject,
            "ok": self.ok,
            "counts": self.counts(),
            "wall_s": self.wall_s,
            "truncated": dict(self.truncated),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_sarif(self) -> dict[str, object]:
        """SARIF 2.1.0-shaped dict (one run, one result per finding).

        ``physicalLocation`` carries the subject as the artifact and
        the finding location as a logical region description — netlist
        objects have no file/line, so logical locations are the
        faithful encoding.
        """
        rules_meta = [
            {"id": rule_id} for rule_id in
            dict.fromkeys(f.rule_id for f in self.findings)]
        results: list[dict[str, object]] = []
        for finding in self.findings:
            result: dict[str, object] = {
                "ruleId": finding.rule_id,
                "level": finding.severity.sarif_level,
                "message": {"text": finding.message},
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName":
                            f"{finding.subject}::{finding.location}"
                            if finding.location else finding.subject,
                    }],
                }],
            }
            if finding.waived:
                result["suppressions"] = [{
                    "kind": "external",
                    "justification": finding.waive_reason,
                }]
            results.append(result)
        return {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0"
                        ".json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "repro.lint",
                                    "rules": rules_meta}},
                "results": results,
            }],
        }

    def __str__(self) -> str:
        return self.render()
