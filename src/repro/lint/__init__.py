"""Static analysis: netlist lint and flow verification before runtime.

The panel's economics are blunt: design cost and debug time, not tool
speed, bound what gets built.  The cheapest debug hour is the one a
static check made unnecessary — so this package gives the suite
signoff-style lint with one rule registry and machine-readable
reports, wired into the orchestrator as a pre-run gate:

* **Netlist lint** (:mod:`~repro.lint.netlist_rules`) — undriven and
  multi-driven nets, floating pins, dangling POs, combinational
  cycles, fanout overloads, dead cones (``NET-xxx``), plus hierarchy
  port checks for two-level designs (``NET-008``).
* **Flow static verification** (:mod:`~repro.lint.flow_rules`) —
  missing producers, cycles, dead stages, knob typos, and undeclared
  ``ctx`` reads on a :class:`~repro.orchestrate.dag.FlowDAG`
  (``FLOW-xxx``).
* **Purity checking** (:mod:`~repro.lint.purity`) — AST-level
  cache-soundness hazards in stage functions: wall-clock reads,
  unseeded randomness, environment reads, captured-global mutation
  (``PURE-xxx``), with inline ``# lint: waive`` support.
* **Stage-boundary sanitizing** (:mod:`~repro.lint.sanitize`) —
  re-run the invariant rules on every stage output so the first
  corrupting stage is named in telemetry.

Everything lands in a :class:`LintReport` (JSON / SARIF export,
waiver files), and ``orchestrate.run(..., lint="strict")`` refuses to
execute a flow whose report has unwaived errors.

Command line::

    PYTHONPATH=src python -m repro.lint design.v --node 28nm --json
"""

from repro.lint.flow_rules import (
    DEFAULT_RUN_PARAMS,
    FlowLintContext,
    lint_flow,
)
from repro.lint.netlist_rules import (
    INVARIANT_RULE_IDS,
    LintConfig,
    NetlistLintContext,
    lint_design,
    lint_netlist,
)
from repro.lint.purity import check_flow_purity, check_stage_purity
from repro.lint.registry import (
    REGISTRY,
    LintError,
    LintGateError,
    Rule,
    RuleRegistry,
    rule,
)
from repro.lint.report import (
    Finding,
    LintReport,
    Severity,
    Waiver,
    Waivers,
)
from repro.lint.sanitize import StageSanitizer, find_netlists

__all__ = [
    "DEFAULT_RUN_PARAMS",
    "Finding",
    "FlowLintContext",
    "INVARIANT_RULE_IDS",
    "LintConfig",
    "LintError",
    "LintGateError",
    "LintReport",
    "NetlistLintContext",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "Severity",
    "StageSanitizer",
    "Waiver",
    "Waivers",
    "check_flow_purity",
    "check_stage_purity",
    "find_netlists",
    "lint_design",
    "lint_flow",
    "lint_netlist",
    "rule",
]
