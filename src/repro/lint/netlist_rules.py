"""Netlist lint rules: structural signoff checks before a flow runs.

Commercial flows refuse to burn hours of compute on a netlist a lint
pass would have rejected in milliseconds.  These rules encode the
invariants the rest of the suite silently assumes — exactly one driver
per net, connected pins, acyclic combinational logic — plus the
quality checks (fanout load, dead cones) that predict downstream pain.

All rules read from one shared :class:`NetlistLintContext` built in a
single pass over the design.  The context packs the (possibly broken)
netlist into a fresh columnar
:class:`~repro.netlist.packed.PackedNetlist` — fresh, because lint
subjects are often mutated behind the change journal's back — and the
rules run vectorized over the interned int32 arrays: undriven reads,
driver counts, load sums, cycle detection, and liveness are all numpy
passes, with Python fallbacks only for the (rare) violating rows, so
a full lint of a 50k-gate design stays well under a second
(``benchmarks/bench_lint.py`` gates this).

Rule table
----------

========  ========  =====================================================
NET-001   error     gate pin or load reads an undriven net
NET-002   error     net has more than one driver
NET-003   error     gate pin set disagrees with its cell's declared pins
NET-004   error     primary output dangles (undriven / duplicate)
NET-005   error     combinational cycle
NET-006   warning   fanout load exceeds the driver's capability
NET-007   warning   dead logic cone (unreachable from any PO or flop)
========  ========  =====================================================

(NET-008, hierarchy port checks, lives in the ``hierarchy`` scope —
see :func:`hierarchy_port_mismatch` — because its subject is a
:class:`~repro.netlist.hierarchy.Design`, not a flat netlist.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.lint.registry import REGISTRY, Violation, rule
from repro.lint.report import LintReport, Severity, Waivers
from repro.netlist.packed import PackedNetlist, _kahn_levels, csr_gather

#: Rules that must hold for the analysis/optimization kernels to be
#: trustworthy at all — the set the stage-boundary sanitizer re-runs.
INVARIANT_RULE_IDS = ("NET-001", "NET-002", "NET-003", "NET-004",
                      "NET-005")


@dataclass
class LintConfig:
    """Tunable thresholds for the quality (non-invariant) rules.

    ``max_slope_ff`` bounds the load a driver may see, expressed as a
    multiple of its own input capacitance (a cell driving more than
    ~48x its input cap is far outside the linear-delay model's
    calibration).  ``max_fanout`` is an absolute load-count backstop.
    """

    max_slope_ff_ratio: float = 48.0
    max_fanout: int = 256
    max_findings_per_rule: int = 50


class NetlistLintContext:
    """Shared single-pass facts every netlist rule reads.

    Built once per lint call from a *fresh*
    :class:`~repro.netlist.packed.PackedNetlist` (lint subjects are
    frequently mutated behind the change journal's back, so the
    netlist's memoized ``to_packed`` view cannot be trusted here):
    interned name tables, per-net driver CSRs tolerant of multi-driven
    nets, pin-order load sums, and a cycle-tolerant Kahn pass — all
    vectorized.  Rules stay tiny and cannot disagree about the
    design's structure.
    """

    def __init__(self, netlist: Any,
                 config: LintConfig | None = None) -> None:
        self.netlist = netlist
        self.config = config or LintConfig()
        self.driven: set[str] = set(netlist.nets())
        self.pi_set: set[str] = set(netlist.primary_inputs)
        packed = PackedNetlist.from_netlist(netlist)
        self.packed = packed
        n_nets = packed.num_nets
        G = packed.num_gates
        self.gate_list: list[Any] = list(netlist.gates.values())

        # ``driven`` comes from the netlist's own ledger (``nets()``),
        # not from the packed outputs: on a broken design the two
        # disagree, and the ledger is what the rest of the suite
        # trusts.
        self.driven_mask = np.fromiter(
            (n in self.driven for n in packed.net_names),
            dtype=bool, count=n_nets)

        self.out = packed.gate_output.astype(np.int64)
        self.pin_counts = np.diff(packed.pin_off.astype(np.int64))
        self.pin_row = np.repeat(np.arange(G, dtype=np.int64),
                                 self.pin_counts)
        self.pin_net = packed.pin_net.astype(np.int64)
        self.pin_name = packed.pin_name.astype(np.int64)
        self.pi_ids = packed.primary_inputs.astype(np.int64)

        # Per-net driver CSR over gates (multi-driver tolerant) plus
        # primary-input driver counts.
        self.drv_order = np.argsort(self.out, kind="stable")
        self.drv_cnt = np.bincount(self.out, minlength=n_nets) \
            if G else np.zeros(n_nets, dtype=np.int64)
        self.drv_off = np.zeros(n_nets + 1, dtype=np.int64)
        np.cumsum(self.drv_cnt, out=self.drv_off[1:])
        self.pi_cnt = np.bincount(self.pi_ids, minlength=n_nets) \
            if self.pi_ids.size else np.zeros(n_nets, dtype=np.int64)

        # Undriven reads, in packed pin order (= gate, then pin order).
        bad = np.flatnonzero(~self.driven_mask[self.pin_net]) \
            if self.pin_net.size else np.empty(0, dtype=np.int64)
        gn, pn, nn = packed.gate_names, packed.pin_names, packed.net_names
        self.undriven_reads: list[tuple[str, str, str]] = [
            (gn[self.pin_row[i]], pn[self.pin_name[i]], nn[self.pin_net[i]])
            for i in bad.tolist()]
        self.cycle_gates: list[str] = self._find_cycle_gates()

    # -- traversal helpers ---------------------------------------------

    def net_drivers(self, net_id: int) -> np.ndarray:
        """Gate rows driving a net (excludes primary-input drivers)."""
        return self.drv_order[self.drv_off[net_id]:
                              self.drv_off[net_id + 1]]

    def _find_cycle_gates(self) -> list[str]:
        """Combinational gates stuck on a dependency cycle.

        A cycle-tolerant vectorized Kahn pass over explicit
        comb-driver -> comb-reader edges (multi-driven nets expand to
        one edge per driver): whatever never becomes ready is on or
        behind a cycle.
        """
        packed = self.packed
        comb = ~packed.seq_gate_mask()
        cnt = self.drv_cnt[self.pin_net]
        edst = np.repeat(self.pin_row, cnt)
        esrc = self.drv_order[
            csr_gather(self.drv_off[:-1][self.pin_net], cnt)]
        keep = comb[esrc] & comb[edst]
        _, cyclic = _kahn_levels(packed.num_gates, comb,
                                 esrc[keep], edst[keep])
        names = packed.gate_names
        return sorted(names[i] for i in cyclic.tolist())

    def live_gates(self) -> set[str]:
        """Gates on some cone feeding a PO or a sequential element.

        Vectorized reverse BFS: frontier nets gather their driver
        gates through the per-net driver CSR, newly live gates
        contribute their pin nets, until the closure is stable.
        """
        packed = self.packed
        seq = packed.seq_gate_mask()
        live = np.zeros(packed.num_gates, dtype=bool)
        seen = np.zeros(packed.num_nets, dtype=bool)
        seeds = [packed.primary_outputs.astype(np.int64)]
        if self.pin_net.size:
            seeds.append(self.pin_net[seq[self.pin_row]])
        frontier = np.unique(np.concatenate(seeds)) \
            if packed.num_nets else np.empty(0, dtype=np.int64)
        off = packed.pin_off.astype(np.int64)
        while frontier.size:
            seen[frontier] = True
            cnt = self.drv_cnt[frontier]
            drvs = self.drv_order[
                csr_gather(self.drv_off[:-1][frontier], cnt)]
            new = np.unique(drvs[~live[drvs]]) if drvs.size else drvs
            if not new.size:
                break
            live[new] = True
            nets = self.pin_net[
                csr_gather(off[:-1][new], self.pin_counts[new])]
            frontier = np.unique(nets[~seen[nets]]) \
                if nets.size else nets
        names = packed.gate_names
        return {names[i] for i in np.flatnonzero(live).tolist()}


# ----------------------------------------------------------------------
# Invariant rules (the sanitizer re-runs these at stage boundaries)


@rule("NET-001", Severity.ERROR, "undriven net", "netlist")
def undriven_net(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A gate pin or primary output reads a net nothing drives."""
    for gate_name, pin, net in ctx.undriven_reads:
        yield (net, f"gate {gate_name} pin {pin} reads undriven "
                    f"net {net!r}")


@rule("NET-002", Severity.ERROR, "multi-driven net", "netlist")
def multi_driven_net(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A net with two or more drivers (short circuit in silicon)."""
    total = ctx.pi_cnt + ctx.drv_cnt
    if not (total > 1).any():
        return
    # Report in first-declaration order (PIs, then gate outputs).
    seq = np.concatenate((ctx.pi_ids, ctx.out))
    uq, first = np.unique(seq, return_index=True)
    multi = uq[total[uq] > 1]
    gn, nn = ctx.packed.gate_names, ctx.packed.net_names
    for nid in multi[np.argsort(first[total[uq] > 1],
                                kind="stable")].tolist():
        drivers = ["<pi>"] * int(ctx.pi_cnt[nid]) + \
            [gn[g] for g in ctx.net_drivers(nid).tolist()]
        names = ", ".join("primary input" if d == "<pi>" else d
                          for d in sorted(drivers))
        net = nn[nid]
        yield (net, f"net {net!r} has {len(drivers)} drivers: "
                    f"{names}")


@rule("NET-003", Severity.ERROR, "floating or phantom gate input",
      "netlist")
def floating_gate_input(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Gate pin set must match its cell's declared input pins.

    Vectorized screen: a gate is suspect when any connected pin falls
    outside its cell's declared table or its pin count disagrees with
    the declaration; only suspects pay the Python set-diff that emits
    the exact finding text.
    """
    packed = ctx.packed
    n_cells = len(packed.cell_names)
    n_pins = len(packed.pin_names)
    pin_tbl = {p: i for i, p in enumerate(packed.pin_names)}
    declared_ok = np.zeros((n_cells, n_pins), dtype=bool)
    declared_cnt = np.zeros(n_cells, dtype=np.int64)
    for ci, pins in enumerate(packed.cell_pins):
        declared_cnt[ci] = len(pins)
        for p in pins:
            j = pin_tbl.get(p)
            if j is not None:
                declared_ok[ci, j] = True
    cell_of = packed.gate_cell.astype(np.int64)
    bad_pins = np.zeros(packed.num_gates, dtype=np.int64)
    if ctx.pin_net.size:
        ok = declared_ok[cell_of[ctx.pin_row], ctx.pin_name] \
            if n_pins else np.zeros(ctx.pin_net.size, dtype=bool)
        np.add.at(bad_pins, ctx.pin_row[~ok], 1)
    suspects = np.flatnonzero((bad_pins > 0)
                              | (ctx.pin_counts != declared_cnt[cell_of]))
    for i in suspects.tolist():
        gate = ctx.gate_list[i]
        declared = set(gate.cell.inputs)
        connected = set(gate.pins)
        for pin in sorted(declared - connected):
            yield (gate.name, f"gate {gate.name} ({gate.cell.name}) "
                              f"leaves input pin {pin} floating")
        for pin in sorted(connected - declared):
            yield (gate.name, f"gate {gate.name} connects pin {pin} "
                              f"that cell {gate.cell.name} does not "
                              f"declare")


@rule("NET-004", Severity.ERROR, "dangling primary output", "netlist")
def dangling_primary_output(ctx: NetlistLintContext
                            ) -> Iterator[Violation]:
    """POs must name driven nets, once each."""
    seen: set[str] = set()
    for po in ctx.netlist.primary_outputs:
        if po not in ctx.driven:
            yield (po, f"primary output {po!r} is undriven")
        if po in seen:
            yield (po, f"primary output {po!r} declared more than "
                       f"once", Severity.WARNING)
        seen.add(po)


@rule("NET-005", Severity.ERROR, "combinational cycle", "netlist")
def combinational_cycle(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Feedback through combinational gates only (no flop on the loop)."""
    if not ctx.cycle_gates:
        return
    head = ", ".join(ctx.cycle_gates[:8])
    more = len(ctx.cycle_gates) - 8
    if more > 0:
        head += f", ... {more} more"
    yield (ctx.cycle_gates[0],
           f"combinational cycle through {len(ctx.cycle_gates)} "
           f"gate(s): {head}")


# ----------------------------------------------------------------------
# Quality rules


@rule("NET-006", Severity.WARNING, "fanout load beyond drive strength",
      "netlist")
def fanout_overload(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A driver loaded far outside its delay model's calibration.

    Per-net load counts and cap sums are single ``bincount`` passes
    over the packed pin arrays (weights accumulate in pin order — the
    same float addition order as the old per-net Python sum).
    """
    config = ctx.config
    if not ctx.pin_net.size:
        return
    n_nets = ctx.packed.num_nets
    cap = np.array([g.cell.input_cap_ff for g in ctx.gate_list])
    n_loads = np.bincount(ctx.pin_net, minlength=n_nets)
    load_ff = np.bincount(ctx.pin_net, weights=cap[ctx.pin_row],
                          minlength=n_nets)
    # Nets with exactly one driver, and it is a gate (PIs have no
    # cell to overload), visited in first-read order.
    read_ids, first = np.unique(ctx.pin_net, return_index=True)
    order = np.argsort(first, kind="stable")
    nn = ctx.packed.net_names
    for nid in read_ids[order].tolist():
        if int(ctx.drv_cnt[nid]) != 1 or int(ctx.pi_cnt[nid]):
            continue
        net = nn[nid]
        if int(n_loads[nid]) > config.max_fanout:
            yield (net, f"net {net!r}: fanout {int(n_loads[nid])} "
                        f"exceeds max_fanout {config.max_fanout}")
            continue
        driver = ctx.gate_list[int(ctx.net_drivers(nid)[0])]
        own_cap = driver.cell.input_cap_ff
        limit_ff = config.max_slope_ff_ratio * max(own_cap, 1e-6)
        if load_ff[nid] > limit_ff:
            yield (net, f"net {net!r}: load {load_ff[nid]:.1f} fF on "
                        f"{driver.cell.name} exceeds "
                        f"{config.max_slope_ff_ratio:.0f}x its input "
                        f"cap ({limit_ff:.1f} fF)")


@rule("NET-007", Severity.WARNING, "dead logic cone", "netlist")
def dead_logic_cone(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Combinational gates no PO or flop can observe (wasted area)."""
    live = ctx.live_gates()
    names = ctx.packed.gate_names
    comb_rows = np.flatnonzero(~ctx.packed.seq_gate_mask())
    dead = [names[i] for i in comb_rows.tolist()
            if names[i] not in live]
    for name in sorted(dead):
        yield (name, f"gate {name} drives no cone observable at a "
                     f"primary output or flop")


# ----------------------------------------------------------------------
# Hierarchy rules (subject: repro.netlist.hierarchy.Design)


@rule("NET-008", Severity.ERROR, "hierarchy port mismatch", "hierarchy")
def hierarchy_port_mismatch(design: Any) -> Iterator[Violation]:
    """Instance port maps must match their module's declared ports.

    Covers phantom ports (mapped but not declared), unmapped input
    ports, port-count (bus width) mismatches, and two instances
    driving the same top-level net.
    """
    top_driven: dict[str, list[str]] = {}
    for net in design.top_inputs:
        top_driven.setdefault(net, []).append("<top input>")
    for inst in design.instances:
        module = design.modules.get(inst.module)
        if module is None:
            yield (inst.name, f"instance {inst.name} references "
                              f"unknown module {inst.module!r}")
            continue
        ports_in = set(module.ports_in)
        ports_out = set(module.ports_out)
        for port in sorted(set(inst.input_map) - ports_in):
            yield (inst.name,
                   f"instance {inst.name} maps input port {port!r} "
                   f"that module {module.name} does not declare")
        for port in sorted(ports_in - set(inst.input_map)):
            yield (inst.name,
                   f"instance {inst.name} leaves module "
                   f"{module.name} input port {port!r} unconnected")
        for port in sorted(set(inst.output_map) - ports_out):
            yield (inst.name,
                   f"instance {inst.name} maps output port {port!r} "
                   f"that module {module.name} does not declare")
        for port in sorted(ports_out - set(inst.output_map)):
            yield (inst.name,
                   f"instance {inst.name} leaves module "
                   f"{module.name} output port {port!r} dangling",
                   Severity.WARNING)
        if len(inst.input_map) != len(ports_in) or \
                len(inst.output_map) > len(ports_out):
            yield (inst.name,
                   f"instance {inst.name} port widths "
                   f"{len(inst.input_map)}/{len(inst.output_map)} "
                   f"do not match module {module.name} "
                   f"{len(ports_in)}/{len(ports_out)}",
                   Severity.WARNING)
        for port, net in inst.output_map.items():
            top_driven.setdefault(net, []).append(
                f"{inst.name}.{port}")
    for net, drivers in sorted(top_driven.items()):
        if len(drivers) > 1:
            yield (net, f"top-level net {net!r} has "
                        f"{len(drivers)} drivers: "
                        f"{', '.join(sorted(drivers))}")
    driven = set(top_driven)
    for net in design.top_outputs:
        if net not in driven:
            yield (net, f"top-level output {net!r} is driven by no "
                        f"instance or top input")


# ----------------------------------------------------------------------
# Entry points


def lint_netlist(netlist: Any, *, config: LintConfig | None = None,
                 waivers: Waivers | None = None,
                 only: list[str] | None = None) -> LintReport:
    """Run every netlist-scope rule over a flat mapped netlist.

    ``only`` restricts to specific rule ids (the sanitizer passes
    :data:`INVARIANT_RULE_IDS`); ``waivers`` marks reviewed findings.
    """
    t0 = time.perf_counter()
    ctx = NetlistLintContext(netlist, config)
    cap = ctx.config.max_findings_per_rule
    report = REGISTRY.run("netlist", ctx, netlist.name, only=only,
                          waivers=waivers,
                          max_findings_per_rule=cap)
    report.wall_s = time.perf_counter() - t0
    return report


def lint_design(design: Any, *, config: LintConfig | None = None,
                waivers: Waivers | None = None,
                lint_modules: bool = True) -> LintReport:
    """Lint a two-level hierarchical design.

    Hierarchy port rules run on the design itself; with
    ``lint_modules`` each module's implementation netlist is linted
    too (findings keep the module netlist as their subject prefix).
    """
    t0 = time.perf_counter()
    report = REGISTRY.run(
        "hierarchy", design, design.name,
        max_findings_per_rule=(config or LintConfig())
        .max_findings_per_rule)
    if lint_modules:
        for module in design.modules.values():
            sub = lint_netlist(module.netlist, config=config)
            for finding in sub.findings:
                report.findings.append(finding)
            for rule_id, count in sub.truncated.items():
                report.truncated[rule_id] = \
                    report.truncated.get(rule_id, 0) + count
    if waivers is not None:
        report.findings = waivers.apply(report.findings)
    report.wall_s = time.perf_counter() - t0
    return report
