"""Netlist lint rules: structural signoff checks before a flow runs.

Commercial flows refuse to burn hours of compute on a netlist a lint
pass would have rejected in milliseconds.  These rules encode the
invariants the rest of the suite silently assumes — exactly one driver
per net, connected pins, acyclic combinational logic — plus the
quality checks (fanout load, dead cones) that predict downstream pain.

All rules read from one shared :class:`NetlistLintContext` built in a
single pass over the design, reusing the memoized
``fanout_map``/``topological_gates`` accelerators where the netlist is
healthy enough for them, so a full lint of a 50k-gate design stays
well under a second (``benchmarks/bench_lint.py`` gates this).

Rule table
----------

========  ========  =====================================================
NET-001   error     gate pin or load reads an undriven net
NET-002   error     net has more than one driver
NET-003   error     gate pin set disagrees with its cell's declared pins
NET-004   error     primary output dangles (undriven / duplicate)
NET-005   error     combinational cycle
NET-006   warning   fanout load exceeds the driver's capability
NET-007   warning   dead logic cone (unreachable from any PO or flop)
========  ========  =====================================================

(NET-008, hierarchy port checks, lives in the ``hierarchy`` scope —
see :func:`hierarchy_port_mismatch` — because its subject is a
:class:`~repro.netlist.hierarchy.Design`, not a flat netlist.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

from repro.lint.registry import REGISTRY, Violation, rule
from repro.lint.report import LintReport, Severity, Waivers

#: Rules that must hold for the analysis/optimization kernels to be
#: trustworthy at all — the set the stage-boundary sanitizer re-runs.
INVARIANT_RULE_IDS = ("NET-001", "NET-002", "NET-003", "NET-004",
                      "NET-005")


@dataclass
class LintConfig:
    """Tunable thresholds for the quality (non-invariant) rules.

    ``max_slope_ff`` bounds the load a driver may see, expressed as a
    multiple of its own input capacitance (a cell driving more than
    ~48x its input cap is far outside the linear-delay model's
    calibration).  ``max_fanout`` is an absolute load-count backstop.
    """

    max_slope_ff_ratio: float = 48.0
    max_fanout: int = 256
    max_findings_per_rule: int = 50


class NetlistLintContext:
    """Shared single-pass facts every netlist rule reads.

    Built once per lint call: driver tables, loads, and a
    cycle-tolerant topological attempt.  Rules stay tiny and cannot
    disagree about the design's structure.  When the netlist's own
    memoized views are usable (no undriven reads), ``fanout_map`` is
    served from the netlist's cache rather than rebuilt.
    """

    def __init__(self, netlist: Any,
                 config: LintConfig | None = None) -> None:
        self.netlist = netlist
        self.config = config or LintConfig()
        self.driven: set[str] = set(netlist.nets())
        self.pi_set: set[str] = set(netlist.primary_inputs)
        # net -> driver names ("<pi>" marks a primary-input driver).
        self.drivers: dict[str, list[str]] = {}
        for net in netlist.primary_inputs:
            self.drivers.setdefault(net, []).append("<pi>")
        gates: dict[str, Any] = netlist.gates
        for gate in gates.values():
            self.drivers.setdefault(gate.output, []).append(gate.name)
        # net -> (gate name, pin) loads.  The netlist's memoized
        # fanout_map serves this when every read is driven; otherwise
        # (a netlist broken enough to lint) build it locally so the
        # context never poisons the accelerator caches.
        self.loads: dict[str, list[tuple[str, str]]] = {}
        self.undriven_reads: list[tuple[str, str, str]] = []
        for gate in gates.values():
            for pin, net in gate.pins.items():
                self.loads.setdefault(net, []).append((gate.name, pin))
                if net not in self.driven:
                    self.undriven_reads.append((gate.name, pin, net))
        self.cycle_gates: list[str] = self._find_cycle_gates()

    # -- traversal helpers ---------------------------------------------

    def _find_cycle_gates(self) -> list[str]:
        """Combinational gates stuck on a dependency cycle.

        A cycle-tolerant Kahn pass (the netlist's own
        ``topological_gates`` raises instead of reporting, and dies on
        undriven reads): whatever never becomes ready is on or behind
        a cycle.
        """
        netlist = self.netlist
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        comb: dict[str, Any] = {
            g.name: g for g in netlist.combinational_gates()}
        for name, gate in comb.items():
            degree = 0
            for net in gate.pins.values():
                for drv in self.drivers.get(net, ()):
                    if drv != "<pi>" and drv in comb:
                        degree += 1
                        dependents.setdefault(drv, []).append(name)
            indeg[name] = degree
        ready = [n for n, d in indeg.items() if d == 0]
        done = 0
        while ready:
            name = ready.pop()
            done += 1
            for dep in dependents.get(name, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if done == len(comb):
            return []
        return sorted(n for n, d in indeg.items() if d > 0)

    def live_gates(self) -> set[str]:
        """Gates on some cone feeding a PO or a sequential element."""
        netlist = self.netlist
        live_nets: list[str] = list(netlist.primary_outputs)
        for gate in netlist.sequential_gates():
            live_nets.extend(gate.pins.values())
        live: set[str] = set()
        frontier = live_nets
        gates: dict[str, Any] = netlist.gates
        while frontier:
            net = frontier.pop()
            for drv in self.drivers.get(net, ()):
                if drv == "<pi>" or drv in live:
                    continue
                live.add(drv)
                gate = gates.get(drv)
                if gate is not None:
                    frontier.extend(gate.pins.values())
        return live


# ----------------------------------------------------------------------
# Invariant rules (the sanitizer re-runs these at stage boundaries)


@rule("NET-001", Severity.ERROR, "undriven net", "netlist")
def undriven_net(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A gate pin or primary output reads a net nothing drives."""
    for gate_name, pin, net in ctx.undriven_reads:
        yield (net, f"gate {gate_name} pin {pin} reads undriven "
                    f"net {net!r}")


@rule("NET-002", Severity.ERROR, "multi-driven net", "netlist")
def multi_driven_net(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A net with two or more drivers (short circuit in silicon)."""
    for net, drivers in ctx.drivers.items():
        if len(drivers) > 1:
            names = ", ".join("primary input" if d == "<pi>" else d
                              for d in sorted(drivers))
            yield (net, f"net {net!r} has {len(drivers)} drivers: "
                        f"{names}")


@rule("NET-003", Severity.ERROR, "floating or phantom gate input",
      "netlist")
def floating_gate_input(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Gate pin set must match its cell's declared input pins."""
    gates: dict[str, Any] = ctx.netlist.gates
    for gate in gates.values():
        declared = set(gate.cell.inputs)
        connected = set(gate.pins)
        for pin in sorted(declared - connected):
            yield (gate.name, f"gate {gate.name} ({gate.cell.name}) "
                              f"leaves input pin {pin} floating")
        for pin in sorted(connected - declared):
            yield (gate.name, f"gate {gate.name} connects pin {pin} "
                              f"that cell {gate.cell.name} does not "
                              f"declare")


@rule("NET-004", Severity.ERROR, "dangling primary output", "netlist")
def dangling_primary_output(ctx: NetlistLintContext
                            ) -> Iterator[Violation]:
    """POs must name driven nets, once each."""
    seen: set[str] = set()
    for po in ctx.netlist.primary_outputs:
        if po not in ctx.driven:
            yield (po, f"primary output {po!r} is undriven")
        if po in seen:
            yield (po, f"primary output {po!r} declared more than "
                       f"once", Severity.WARNING)
        seen.add(po)


@rule("NET-005", Severity.ERROR, "combinational cycle", "netlist")
def combinational_cycle(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Feedback through combinational gates only (no flop on the loop)."""
    if not ctx.cycle_gates:
        return
    head = ", ".join(ctx.cycle_gates[:8])
    more = len(ctx.cycle_gates) - 8
    if more > 0:
        head += f", ... {more} more"
    yield (ctx.cycle_gates[0],
           f"combinational cycle through {len(ctx.cycle_gates)} "
           f"gate(s): {head}")


# ----------------------------------------------------------------------
# Quality rules


@rule("NET-006", Severity.WARNING, "fanout load beyond drive strength",
      "netlist")
def fanout_overload(ctx: NetlistLintContext) -> Iterator[Violation]:
    """A driver loaded far outside its delay model's calibration."""
    config = ctx.config
    gates: dict[str, Any] = ctx.netlist.gates
    for net, loads in ctx.loads.items():
        drivers = ctx.drivers.get(net, [])
        if len(drivers) != 1 or drivers[0] == "<pi>":
            continue               # PIs have no cell to overload
        driver = gates[drivers[0]]
        if len(loads) > config.max_fanout:
            yield (net, f"net {net!r}: fanout {len(loads)} exceeds "
                        f"max_fanout {config.max_fanout}")
            continue
        load_ff = 0.0
        for load_name, _pin in loads:
            load_gate = gates.get(load_name)
            if load_gate is not None:
                load_ff += load_gate.cell.input_cap_ff
        own_cap = driver.cell.input_cap_ff
        limit_ff = config.max_slope_ff_ratio * max(own_cap, 1e-6)
        if load_ff > limit_ff:
            yield (net, f"net {net!r}: load {load_ff:.1f} fF on "
                        f"{driver.cell.name} exceeds "
                        f"{config.max_slope_ff_ratio:.0f}x its input "
                        f"cap ({limit_ff:.1f} fF)")


@rule("NET-007", Severity.WARNING, "dead logic cone", "netlist")
def dead_logic_cone(ctx: NetlistLintContext) -> Iterator[Violation]:
    """Combinational gates no PO or flop can observe (wasted area)."""
    live = ctx.live_gates()
    dead = [g.name for g in ctx.netlist.combinational_gates()
            if g.name not in live]
    for name in sorted(dead):
        yield (name, f"gate {name} drives no cone observable at a "
                     f"primary output or flop")


# ----------------------------------------------------------------------
# Hierarchy rules (subject: repro.netlist.hierarchy.Design)


@rule("NET-008", Severity.ERROR, "hierarchy port mismatch", "hierarchy")
def hierarchy_port_mismatch(design: Any) -> Iterator[Violation]:
    """Instance port maps must match their module's declared ports.

    Covers phantom ports (mapped but not declared), unmapped input
    ports, port-count (bus width) mismatches, and two instances
    driving the same top-level net.
    """
    top_driven: dict[str, list[str]] = {}
    for net in design.top_inputs:
        top_driven.setdefault(net, []).append("<top input>")
    for inst in design.instances:
        module = design.modules.get(inst.module)
        if module is None:
            yield (inst.name, f"instance {inst.name} references "
                              f"unknown module {inst.module!r}")
            continue
        ports_in = set(module.ports_in)
        ports_out = set(module.ports_out)
        for port in sorted(set(inst.input_map) - ports_in):
            yield (inst.name,
                   f"instance {inst.name} maps input port {port!r} "
                   f"that module {module.name} does not declare")
        for port in sorted(ports_in - set(inst.input_map)):
            yield (inst.name,
                   f"instance {inst.name} leaves module "
                   f"{module.name} input port {port!r} unconnected")
        for port in sorted(set(inst.output_map) - ports_out):
            yield (inst.name,
                   f"instance {inst.name} maps output port {port!r} "
                   f"that module {module.name} does not declare")
        for port in sorted(ports_out - set(inst.output_map)):
            yield (inst.name,
                   f"instance {inst.name} leaves module "
                   f"{module.name} output port {port!r} dangling",
                   Severity.WARNING)
        if len(inst.input_map) != len(ports_in) or \
                len(inst.output_map) > len(ports_out):
            yield (inst.name,
                   f"instance {inst.name} port widths "
                   f"{len(inst.input_map)}/{len(inst.output_map)} "
                   f"do not match module {module.name} "
                   f"{len(ports_in)}/{len(ports_out)}",
                   Severity.WARNING)
        for port, net in inst.output_map.items():
            top_driven.setdefault(net, []).append(
                f"{inst.name}.{port}")
    for net, drivers in sorted(top_driven.items()):
        if len(drivers) > 1:
            yield (net, f"top-level net {net!r} has "
                        f"{len(drivers)} drivers: "
                        f"{', '.join(sorted(drivers))}")
    driven = set(top_driven)
    for net in design.top_outputs:
        if net not in driven:
            yield (net, f"top-level output {net!r} is driven by no "
                        f"instance or top input")


# ----------------------------------------------------------------------
# Entry points


def lint_netlist(netlist: Any, *, config: LintConfig | None = None,
                 waivers: Waivers | None = None,
                 only: list[str] | None = None) -> LintReport:
    """Run every netlist-scope rule over a flat mapped netlist.

    ``only`` restricts to specific rule ids (the sanitizer passes
    :data:`INVARIANT_RULE_IDS`); ``waivers`` marks reviewed findings.
    """
    t0 = time.perf_counter()
    ctx = NetlistLintContext(netlist, config)
    cap = ctx.config.max_findings_per_rule
    report = REGISTRY.run("netlist", ctx, netlist.name, only=only,
                          waivers=waivers,
                          max_findings_per_rule=cap)
    report.wall_s = time.perf_counter() - t0
    return report


def lint_design(design: Any, *, config: LintConfig | None = None,
                waivers: Waivers | None = None,
                lint_modules: bool = True) -> LintReport:
    """Lint a two-level hierarchical design.

    Hierarchy port rules run on the design itself; with
    ``lint_modules`` each module's implementation netlist is linted
    too (findings keep the module netlist as their subject prefix).
    """
    t0 = time.perf_counter()
    report = REGISTRY.run(
        "hierarchy", design, design.name,
        max_findings_per_rule=(config or LintConfig())
        .max_findings_per_rule)
    if lint_modules:
        for module in design.modules.values():
            sub = lint_netlist(module.netlist, config=config)
            for finding in sub.findings:
                report.findings.append(finding)
            for rule_id, count in sub.truncated.items():
                report.truncated[rule_id] = \
                    report.truncated.get(rule_id, 0) + count
    if waivers is not None:
        report.findings = waivers.apply(report.findings)
    report.wall_s = time.perf_counter() - t0
    return report
