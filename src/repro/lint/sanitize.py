"""Stage-boundary sanitizer: re-check netlist invariants mid-flow.

Pre-run lint proves the *input* is healthy; it cannot prove every
stage keeps it that way.  A buggy optimization pass that doubles a
driver or snips a PO poisons every downstream stage — and, through
the content-hash cache, every *future* run that replays the rotten
artifact.  The sanitizer (opt-in: ``orchestrate.run(...,
sanitize=True)``) re-runs the invariant netlist rules
(:data:`~repro.lint.netlist_rules.INVARIANT_RULE_IDS`) on every
netlist reachable from each completed stage's output, so the **first**
stage that corrupts an invariant is named — in the telemetry span
(``sanitize:<stage>``, status ``failed``) and therefore in the
:class:`~repro.orchestrate.telemetry.RunReport`.

Only *newly broken* invariants are attributed to a stage: findings
already present on the flow's input are the pre-run gate's business,
not the sanitizer's.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from repro.lint.netlist_rules import (
    INVARIANT_RULE_IDS,
    LintConfig,
    lint_netlist,
)
from repro.lint.registry import LintGateError
from repro.lint.report import Finding, LintReport


def find_netlists(value: Any, label: str = "",
                  _depth: int = 0) -> Iterator[tuple[str, Any]]:
    """Netlist objects reachable from a stage output value.

    Shallow by design: the value itself, a ``.netlist`` attribute
    (placements, routing results), and one level of dict/list/tuple
    containers — the shapes real stage outputs take.
    """
    if value is None or _depth > 2:
        return
    if hasattr(value, "gates") and hasattr(value, "primary_inputs") \
            and hasattr(value, "fanout_map"):
        yield (label or getattr(value, "name", "netlist"), value)
        return
    nested = getattr(value, "netlist", None)
    if nested is not None:
        yield from find_netlists(nested, label, _depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            yield from find_netlists(item, f"{label}[{key}]",
                                     _depth + 1)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from find_netlists(item, f"{label}[{index}]",
                                     _depth + 1)


def _finding_key(finding: Finding) -> tuple[str, str]:
    return (finding.rule_id, finding.location)


class StageSanitizer:
    """Per-run invariant watchdog the executors call at each boundary.

    ``mode`` mirrors the lint gate: ``"strict"`` raises
    :class:`~repro.lint.registry.LintGateError` on the first
    corrupting stage, anything else records and continues.  Findings
    present on the flow's input (seed with :meth:`baseline`) are
    excluded from attribution.
    """

    def __init__(self, mode: str = "warn",
                 config: LintConfig | None = None) -> None:
        self.mode = mode
        self.config = config or LintConfig()
        self.reports: dict[str, LintReport] = {}
        self.first_corrupt: str | None = None
        self._baseline: set[tuple[str, str]] = set()

    def baseline(self, value: Any) -> None:
        """Record pre-existing invariant findings of the flow input."""
        for label, netlist in find_netlists(value):
            report = self._lint(netlist)
            self._baseline.update(
                _finding_key(f) for f in report.findings)

    def _lint(self, netlist: Any) -> LintReport:
        return lint_netlist(netlist, config=self.config,
                            only=list(INVARIANT_RULE_IDS))

    def check(self, stage: str, value: Any) -> LintReport:
        """Sanitize one completed stage's output.

        Returns the (possibly empty) report of *new* invariant
        violations; in strict mode a non-empty report raises instead,
        naming the stage.
        """
        t0 = time.perf_counter()
        report = LintReport(subject=f"sanitize:{stage}")
        for label, netlist in find_netlists(value):
            sub = self._lint(netlist)
            for finding in sub.findings:
                if _finding_key(finding) in self._baseline:
                    continue
                report.findings.append(Finding(
                    rule_id=finding.rule_id,
                    severity=finding.severity,
                    message=f"after stage {stage!r}: "
                            f"{finding.message}",
                    subject=f"{stage}:{label}",
                    location=finding.location,
                    waived=finding.waived,
                    waive_reason=finding.waive_reason))
        report.wall_s = time.perf_counter() - t0
        self.reports[stage] = report
        if report.errors and self.first_corrupt is None:
            self.first_corrupt = stage
        if report.errors and self.mode == "strict":
            raise LintGateError(report)
        return report

    def merged(self) -> LintReport:
        """All boundary findings across the run, one report."""
        merged = LintReport(subject="sanitize")
        for report in self.reports.values():
            merged.merge(report)
        return merged
