"""Patterning-regime selection: which litho scheme a given pitch needs.

Encodes Domic's anchor: 193 nm immersion single patterning bottoms out at a
pitch of approximately 80 nm.  Below that, a layer must be decomposed onto
2, 3, 4 ... masks (double/triple/quadruple patterning); the panel projects
that 5 nm "could require octuple-patterning" without EUV.
"""

from __future__ import annotations

import math

from repro.tech.node import LithoRegime

#: Minimum pitch (nm) printable with one 193i exposure, per the panel.
SINGLE_PATTERN_PITCH_NM: float = 80.0

#: Minimum pitch printable with one EUV (13.5 nm) exposure.
EUV_SINGLE_PITCH_NM: float = 28.0


def colors_required(pitch_nm: float,
                    single_limit_nm: float = SINGLE_PATTERN_PITCH_NM) -> int:
    """Number of masks/colors a layer of the given pitch needs at 193i.

    Splitting a layer onto k masks relaxes the same-mask pitch to
    k * pitch, so the requirement is ceil(limit / pitch).
    """
    if pitch_nm <= 0:
        raise ValueError("pitch must be positive")
    return max(1, math.ceil(single_limit_nm / pitch_nm))


def patterning_for_pitch(pitch_nm: float, *,
                         allow_euv: bool = False) -> LithoRegime:
    """Pick the cheapest litho regime able to print ``pitch_nm``.

    With ``allow_euv`` the tool may select EUV once multi-patterning would
    need more than two masks, mirroring the industry's eventual insertion
    point; without it we climb the multi-patterning ladder the panel
    describes (LELE -> LELELE -> SAQP -> octuple).
    """
    k = colors_required(pitch_nm)
    if k == 1:
        return LithoRegime.SINGLE
    if allow_euv and pitch_nm >= EUV_SINGLE_PITCH_NM and k > 2:
        return LithoRegime.EUV
    if k == 2:
        return LithoRegime.LELE
    if k == 3:
        return LithoRegime.LELELE
    if k == 4:
        return LithoRegime.SAQP
    return LithoRegime.OCTUPLE


def masks_for_pitch(pitch_nm: float, *, allow_euv: bool = False) -> int:
    """Mask count per layer for the chosen regime at this pitch."""
    return patterning_for_pitch(pitch_nm, allow_euv=allow_euv).mask_multiplier


def mask_layer_cost_multiplier(regime: LithoRegime) -> float:
    """Relative cost of patterning one layer under a regime.

    Multi-patterning multiplies mask, exposure, and etch steps; EUV
    exposures are single-pass but the tool time is far more expensive.
    Normalized to SINGLE = 1.0.
    """
    return {
        LithoRegime.SINGLE: 1.0,
        LithoRegime.LELE: 2.2,
        LithoRegime.SADP: 2.0,
        LithoRegime.LELELE: 3.5,
        LithoRegime.SAQP: 4.2,
        LithoRegime.OCTUPLE: 9.5,
        LithoRegime.EUV: 3.0,
    }[regime]
