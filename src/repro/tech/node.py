"""The :class:`TechNode` dataclass and its enumerated attributes."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class DeviceKind(enum.Enum):
    """Transistor architecture used at a node."""

    PLANAR = "planar"
    FINFET = "finfet"
    GAA_NANOWIRE = "gaa_nanowire"


class LithoRegime(enum.Enum):
    """Patterning scheme required for the critical metal layers.

    The panel (Domic) puts the single-patterning 193i limit at a pitch of
    "approximately 80 nanometers"; below that the layer must be decomposed
    onto multiple masks.
    """

    SINGLE = "single"          # one exposure per layer
    LELE = "lele"              # litho-etch-litho-etch double patterning
    LELELE = "lelele"          # triple patterning
    SADP = "sadp"              # self-aligned double patterning
    SAQP = "saqp"              # self-aligned quadruple patterning
    OCTUPLE = "octuple"        # hypothetical 8-mask scheme (5 nm w/o EUV)
    EUV = "euv"                # extreme ultraviolet, single exposure again

    @property
    def mask_multiplier(self) -> int:
        """Number of masks needed per critical layer under this regime."""
        return {
            LithoRegime.SINGLE: 1,
            LithoRegime.LELE: 2,
            LithoRegime.SADP: 2,
            LithoRegime.LELELE: 3,
            LithoRegime.SAQP: 4,
            LithoRegime.OCTUPLE: 8,
            LithoRegime.EUV: 1,
        }[self]

    @property
    def coloring_degree(self) -> int:
        """Maximum number of colors available when decomposing a layer."""
        return max(1, self.mask_multiplier)


@dataclass(frozen=True)
class TechNode:
    """A process technology node.

    All geometric values are in nanometers, voltages in volts,
    capacitances in femtofarads, currents in nanoamps, costs in USD.

    Attributes
    ----------
    name:
        Conventional node name, e.g. ``"28nm"``.
    drawn_nm:
        The marketing feature size in nanometers (e.g. 28).
    year:
        Approximate year of volume introduction.
    device:
        Transistor architecture (:class:`DeviceKind`).
    gate_length_nm:
        Physical gate length.
    contacted_poly_pitch_nm:
        Contacted gate (poly) pitch.
    metal1_pitch_nm:
        Minimum metal-1 pitch; drives the patterning regime.
    track_height:
        Standard-cell height in metal tracks.
    vdd:
        Nominal supply voltage.
    vth:
        Nominal threshold voltage (regular-Vt flavor).
    cgate_ff_per_um:
        Gate capacitance per micron of gate width.
    cwire_ff_per_um:
        Wire capacitance per micron of minimum-width wire.
    rwire_ohm_per_um:
        Wire resistance per micron of minimum-width wire.
    ileak_na_per_um:
        Subthreshold leakage per micron of gate width at nominal Vt, 25C.
    density_mtr_per_mm2:
        Logic transistor density in millions of transistors per mm^2.
    metal_layers_typical:
        Typical metal stack depth for a logic product.
    wafer_cost_usd:
        Processed 300 mm wafer cost (200 mm equivalents normalized).
    mask_set_cost_usd:
        Full mask-set cost for a standard logic product.
    defect_density_per_cm2:
        Mature-process random defect density (for yield models).
    litho:
        Patterning regime of the critical layers (:class:`LithoRegime`).
    fmax_ghz:
        Representative peak clock of a tuned CPU core at this node.
    """

    name: str
    drawn_nm: float
    year: int
    device: DeviceKind
    gate_length_nm: float
    contacted_poly_pitch_nm: float
    metal1_pitch_nm: float
    track_height: int
    vdd: float
    vth: float
    cgate_ff_per_um: float
    cwire_ff_per_um: float
    rwire_ohm_per_um: float
    ileak_na_per_um: float
    density_mtr_per_mm2: float
    metal_layers_typical: int
    wafer_cost_usd: float
    mask_set_cost_usd: float
    defect_density_per_cm2: float
    litho: LithoRegime
    fmax_ghz: float
    extra: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # Derived electrical quantities
    # ------------------------------------------------------------------

    @property
    def is_established(self) -> bool:
        """Nodes at 28 nm and above count as "established" in the panel."""
        return self.drawn_nm >= 28

    @property
    def is_emerging(self) -> bool:
        """Nodes below 28 nm count as "emerging" in the panel."""
        return not self.is_established

    @property
    def cell_height_nm(self) -> float:
        """Standard-cell row height in nanometers."""
        return self.track_height * self.metal1_pitch_nm

    def gate_cap_ff(self, width_um: float = 1.0) -> float:
        """Gate capacitance of a transistor of ``width_um`` microns."""
        return self.cgate_ff_per_um * width_um

    def dynamic_energy_fj(self, cap_ff: float) -> float:
        """Switching energy C*Vdd^2 for a capacitance in fF, result in fJ."""
        return cap_ff * self.vdd ** 2

    def leakage_nw(self, width_um: float = 1.0, vth_shift: float = 0.0) -> float:
        """Leakage power in nW for ``width_um`` of gate width.

        ``vth_shift`` raises (positive) or lowers (negative) the threshold;
        leakage responds exponentially with an ~85 mV/decade subthreshold
        slope, which is how multi-Vt libraries trade speed for leakage.
        """
        slope_mv_per_decade = 85.0
        factor = 10.0 ** (-(vth_shift * 1000.0) / slope_mv_per_decade)
        return self.ileak_na_per_um * width_um * self.vdd * factor

    def wire_delay_ps(self, length_um: float) -> float:
        """Elmore delay of an unbuffered minimum-width wire, in ps.

        0.5 * R * C * L^2 with per-micron parasitics; quadratic in length,
        which is what makes buffering and flat implementation matter.
        """
        r = self.rwire_ohm_per_um
        c = self.cwire_ff_per_um * 1e-15
        return 0.5 * r * c * length_um ** 2 * 1e12

    def fo4_delay_ps(self) -> float:
        """Fanout-of-4 inverter delay estimate in ps.

        A classic technology-speed proxy: roughly 0.5 ps per nm of gate
        length for planar CMOS, with FinFET/GAA nodes getting a drive
        boost from the 3-D channel.
        """
        base = 0.5 * self.gate_length_nm
        boost = {
            DeviceKind.PLANAR: 1.0,
            DeviceKind.FINFET: 0.72,
            DeviceKind.GAA_NANOWIRE: 0.62,
        }[self.device]
        return base * boost

    def transistors_for_area(self, area_mm2: float) -> float:
        """How many logic transistors fit in ``area_mm2``."""
        return self.density_mtr_per_mm2 * 1e6 * area_mm2

    def area_for_transistors(self, count: float) -> float:
        """Die area in mm^2 needed for ``count`` logic transistors."""
        return count / (self.density_mtr_per_mm2 * 1e6)

    def power_density_w_per_mm2(self, activity: float = 0.1,
                                freq_ghz: float | None = None) -> float:
        """Nominal logic power density in W/mm^2.

        Combines dynamic power of the node's transistor population
        switching at ``activity`` with nominal leakage.  Used by the
        dark-silicon experiment (E5): post-Dennard nodes show rising
        density if no power technique is applied.
        """
        if freq_ghz is None:
            freq_ghz = self.fmax_ghz
        tr_per_mm2 = self.density_mtr_per_mm2 * 1e6
        # Effective switched cap per transistor: gate cap of a ~2x minimum
        # device plus local wire load.
        width_um = 4.0 * self.gate_length_nm * 1e-3
        cap_f = (self.gate_cap_ff(width_um) + 0.5 * self.cwire_ff_per_um) * 1e-15
        dyn = tr_per_mm2 * activity * cap_f * self.vdd ** 2 * freq_ghz * 1e9
        leak = tr_per_mm2 * self.ileak_na_per_um * width_um * 1e-9 * self.vdd
        return dyn + leak

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def describe(self) -> str:
        """One-line human-readable summary of the node."""
        return (
            f"{self.name} ({self.year}, {self.device.value}, "
            f"Vdd={self.vdd:.2f}V, M1 pitch={self.metal1_pitch_nm:.0f}nm, "
            f"{self.density_mtr_per_mm2:.1f} MTr/mm2, litho={self.litho.value})"
        )


def speed_power_product(node: TechNode) -> float:
    """Figure of merit: FO4 delay times per-transistor switching energy.

    Smaller is better; used by scaling sanity tests.
    """
    width_um = 4.0 * node.gate_length_nm * 1e-3
    energy = node.dynamic_energy_fj(node.gate_cap_ff(width_um))
    return node.fo4_delay_ps() * energy


def interpolate_vdd(drawn_nm: float) -> float:
    """Smooth Vdd-vs-node trend used when synthesizing hypothetical nodes.

    Matches the historical flattening of voltage scaling: fast scaling
    until ~130 nm, then a slow crawl toward ~0.65 V.
    """
    if drawn_nm >= 250:
        return 2.5
    if drawn_nm <= 5:
        return 0.65
    # Log-linear between anchor points.
    anchors = [(250, 2.5), (180, 1.8), (130, 1.2), (90, 1.1), (65, 1.0),
               (45, 0.95), (28, 0.9), (20, 0.85), (14, 0.8), (10, 0.75),
               (7, 0.7), (5, 0.65)]
    for (hi_nm, hi_v), (lo_nm, lo_v) in zip(anchors, anchors[1:]):
        if lo_nm <= drawn_nm <= hi_nm:
            t = (math.log(drawn_nm) - math.log(lo_nm)) / (
                math.log(hi_nm) - math.log(lo_nm))
            return lo_v + t * (hi_v - lo_v)
    raise ValueError(f"node size out of range: {drawn_nm}")
