"""The canonical technology-node table, 250 nm down to 5 nm.

Values are calibrated to public ITRS-era scaling data and to the specific
anchors quoted in the panel:

* single-patterning 193i pitch limit ~80 nm (Domic) — the 20 nm node's
  64 nm metal-1 pitch is the first below it;
* integration capacity up "two orders of magnitude" from 90 nm to 10 nm —
  the density column gives 45/0.5 = 90x;
* voltage scaling flattening at 130 nm where static power began offsetting
  dynamic gains;
* 5 nm "could require octuple patterning" without EUV.
"""

from __future__ import annotations

from repro.tech.node import DeviceKind, LithoRegime, TechNode

_P = DeviceKind.PLANAR
_F = DeviceKind.FINFET
_G = DeviceKind.GAA_NANOWIRE
_L = LithoRegime

#: Canonical nodes, newest last.  Fields (see :class:`TechNode`):
#: name, drawn, year, device, Lgate, CPP, M1 pitch, tracks, Vdd, Vth,
#: Cgate fF/um, Cwire fF/um, Rwire ohm/um, Ileak nA/um, MTr/mm2,
#: metal layers, wafer $, mask-set $, D0 /cm2, litho, fmax GHz
NODES: dict[str, TechNode] = {
    n.name: n
    for n in [
        TechNode("250nm", 250, 1997, _P, 180, 640, 640, 12, 2.50, 0.50,
                 1.30, 0.18, 0.06, 0.02, 0.05, 5, 900, 60_000, 0.30,
                 _L.SINGLE, 0.45),
        TechNode("180nm", 180, 1999, _P, 130, 460, 460, 12, 1.80, 0.45,
                 1.20, 0.19, 0.08, 0.08, 0.10, 6, 1100, 100_000, 0.28,
                 _L.SINGLE, 0.80),
        TechNode("130nm", 130, 2001, _P, 70, 340, 340, 11, 1.20, 0.38,
                 1.10, 0.20, 0.12, 1.00, 0.25, 7, 1400, 300_000, 0.26,
                 _L.SINGLE, 1.40),
        TechNode("90nm", 90, 2004, _P, 50, 240, 240, 11, 1.10, 0.33,
                 1.05, 0.21, 0.18, 6.00, 0.50, 8, 1800, 600_000, 0.25,
                 _L.SINGLE, 2.20),
        TechNode("65nm", 65, 2006, _P, 35, 180, 180, 10, 1.00, 0.30,
                 1.00, 0.22, 0.28, 15.0, 1.00, 9, 2200, 1_000_000, 0.25,
                 _L.SINGLE, 3.00),
        TechNode("45nm", 45, 2008, _P, 30, 140, 140, 10, 0.95, 0.30,
                 0.95, 0.23, 0.45, 25.0, 2.20, 10, 2600, 1_500_000, 0.25,
                 _L.SINGLE, 3.40),
        TechNode("32nm", 32, 2010, _P, 28, 112, 100, 9, 0.92, 0.29,
                 0.92, 0.24, 0.70, 35.0, 3.80, 10, 2900, 2_000_000, 0.25,
                 _L.SINGLE, 3.60),
        TechNode("28nm", 28, 2011, _P, 26, 113, 90, 9, 0.90, 0.29,
                 0.90, 0.24, 0.85, 40.0, 5.50, 10, 3000, 2_500_000, 0.22,
                 _L.SINGLE, 3.80),
        TechNode("20nm", 20, 2014, _P, 24, 90, 64, 9, 0.85, 0.28,
                 0.88, 0.25, 1.40, 45.0, 12.0, 11, 3700, 5_000_000, 0.25,
                 _L.LELE, 3.60),
        TechNode("16nm", 16, 2015, _F, 22, 88, 64, 8, 0.80, 0.30,
                 0.95, 0.25, 1.40, 12.0, 17.0, 11, 4200, 7_000_000, 0.25,
                 _L.LELE, 4.00),
        TechNode("14nm", 14, 2015, _F, 20, 84, 64, 8, 0.80, 0.30,
                 0.95, 0.25, 1.45, 12.0, 22.0, 11, 4500, 8_000_000, 0.25,
                 _L.LELE, 4.20),
        TechNode("10nm", 10, 2017, _F, 18, 64, 45, 7, 0.75, 0.29,
                 1.00, 0.26, 2.20, 10.0, 45.0, 12, 5500, 12_000_000, 0.28,
                 _L.LELELE, 4.40),
        TechNode("7nm", 7, 2019, _F, 16, 56, 40, 6, 0.70, 0.28,
                 1.05, 0.26, 3.00, 9.0, 90.0, 13, 7000, 20_000_000, 0.30,
                 _L.SAQP, 4.60),
        TechNode("5nm", 5, 2021, _G, 14, 48, 32, 6, 0.65, 0.27,
                 1.10, 0.27, 4.20, 8.0, 170.0, 14, 9000, 30_000_000, 0.33,
                 _L.OCTUPLE, 4.80),
    ]
}

#: Node names ordered from oldest/largest to newest/smallest.
NODE_NAMES: list[str] = list(NODES)


def get_node(name: str) -> TechNode:
    """Look up a canonical node by name (``"28nm"``) or size (``28``).

    Raises ``KeyError`` with the list of valid names if not found.
    """
    key = name if isinstance(name, str) else f"{name:g}nm"
    if not key.endswith("nm"):
        key = f"{key}nm"
    try:
        return NODES[key]
    except KeyError:
        raise KeyError(
            f"unknown node {name!r}; valid: {', '.join(NODE_NAMES)}"
        ) from None


def nodes_between(newest: str, oldest: str) -> list[TechNode]:
    """All canonical nodes from ``oldest`` down to ``newest``, inclusive.

    Returned largest-first (the order designs migrate through them).
    """
    lo = get_node(newest).drawn_nm
    hi = get_node(oldest).drawn_nm
    if lo > hi:
        raise ValueError("newest node must be smaller than oldest")
    return [n for n in NODES.values() if lo <= n.drawn_nm <= hi]


def established_nodes() -> list[TechNode]:
    """Nodes at 28 nm and above — >90% of design starts per the panel."""
    return [n for n in NODES.values() if n.is_established]


def emerging_nodes() -> list[TechNode]:
    """Nodes below 28 nm — the leading edge the panel calls "emerging"."""
    return [n for n in NODES.values() if n.is_emerging]
