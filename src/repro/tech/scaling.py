"""Scaling laws: Dennard-era and post-Dennard trends across nodes.

These functions quantify the backdrop of the whole panel: why power became
the binding constraint ("dark silicon"), and why integration capacity rose
two orders of magnitude between 90 nm and 10 nm.
"""

from __future__ import annotations

import dataclasses
import math

from repro.tech.library import get_node
from repro.tech.node import TechNode, interpolate_vdd


def density_gain(older: str | TechNode, newer: str | TechNode) -> float:
    """Transistor-density ratio newer/older (dimensionless, > 1)."""
    a = older if isinstance(older, TechNode) else get_node(older)
    b = newer if isinstance(newer, TechNode) else get_node(newer)
    return b.density_mtr_per_mm2 / a.density_mtr_per_mm2


def integration_capacity_ratio(older: str | TechNode,
                               newer: str | TechNode,
                               die_growth: float = 1.0) -> float:
    """How many more transistors fit on a die after migrating nodes.

    The panel's abstract: "at 10 nanometers, integration capacity has
    increased by two orders of magnitude" relative to 90 nm — i.e. this
    function returns ~100 for ('90nm', '10nm') with modest die growth.
    """
    return density_gain(older, newer) * die_growth


def dennard_power_density(node: str | TechNode, *,
                          activity: float = 0.1,
                          apply_leakage: bool = True) -> float:
    """Power density (W/mm^2) at a node under naive frequency scaling.

    Under ideal Dennard scaling power density is constant; once voltage
    scaling flattened (~130 nm) and leakage grew, density climbs — the
    physics behind Domic's "design for power ... prevented massive
    amounts of dark silicon".

    With ``apply_leakage=False`` the leakage term is dropped, isolating
    the dynamic component (useful for the E5 crossover plot).
    """
    n = node if isinstance(node, TechNode) else get_node(node)
    dyn = n.power_density_w_per_mm2(activity=activity, freq_ghz=n.fmax_ghz)
    if apply_leakage:
        return dyn
    width_um = 4.0 * n.gate_length_nm * 1e-3
    tr_per_mm2 = n.density_mtr_per_mm2 * 1e6
    leak = tr_per_mm2 * n.ileak_na_per_um * width_um * 1e-9 * n.vdd
    return dyn - leak


def scale_node(base: TechNode, shrink: float, *, name: str | None = None,
               year_delta: int = 2) -> TechNode:
    """Synthesize a hypothetical node by geometric shrink of ``base``.

    ``shrink`` is the linear scale factor (e.g. 0.7 for a classic full
    node step).  Geometry scales linearly, density inversely with area,
    Vdd follows the historical trend curve, wire parasitics worsen as
    cross-sections shrink.  Used by forecast experiments to extend the
    roadmap beyond the canonical table.
    """
    if not 0.1 < shrink < 1.0:
        raise ValueError("shrink must be in (0.1, 1.0)")
    drawn = base.drawn_nm * shrink
    new_name = name or f"{drawn:.0f}nm-proj"
    vdd = interpolate_vdd(max(drawn, 5.0))
    return dataclasses.replace(
        base,
        name=new_name,
        drawn_nm=drawn,
        year=base.year + year_delta,
        gate_length_nm=base.gate_length_nm * max(shrink, 0.85),
        contacted_poly_pitch_nm=base.contacted_poly_pitch_nm * shrink,
        metal1_pitch_nm=base.metal1_pitch_nm * shrink,
        vdd=vdd,
        cwire_ff_per_um=base.cwire_ff_per_um * 1.02,
        rwire_ohm_per_um=base.rwire_ohm_per_um / shrink ** 1.5,
        density_mtr_per_mm2=base.density_mtr_per_mm2 / shrink ** 2,
        # Post-EUV-era wafer cost escalation: empirically ~(1/shrink)^1.9
        # per step (patterning steps and tool depreciation outgrow the
        # shrink), which is what flattens cost-per-transistor at the end
        # of the projected roadmap.
        wafer_cost_usd=base.wafer_cost_usd * (1 / shrink) ** 1.9,
        mask_set_cost_usd=base.mask_set_cost_usd * 1.5,
        defect_density_per_cm2=base.defect_density_per_cm2 * 1.1,
        fmax_ghz=base.fmax_ghz * (1 + 0.1 * (1 - shrink)),
    )


def node_cadence_months(year_a: int, year_b: int, steps: int = 1) -> float:
    """Average months between node introductions (panel: "every 18 months")."""
    if steps <= 0:
        raise ValueError("steps must be positive")
    return 12.0 * (year_b - year_a) / steps


def moore_doublings(older: str | TechNode, newer: str | TechNode) -> float:
    """Number of density doublings between two nodes."""
    return math.log2(density_gain(older, newer))
