"""Technology-node models: the spine of the suite.

Every other package consumes :class:`TechNode` objects instead of
hard-coding per-node constants, so every experiment can sweep nodes.

The canonical node table (:data:`NODES`) covers 250 nm down to 5 nm and is
calibrated to public ITRS-era scaling data.  The panel's claims are about
trends *across* nodes (power crossover at 130 nm, multi-patterning onset at
20 nm, 100x integration from 90 nm to 10 nm), all of which the table
reproduces.
"""

from repro.tech.node import (
    DeviceKind,
    LithoRegime,
    TechNode,
)
from repro.tech.library import (
    NODES,
    NODE_NAMES,
    established_nodes,
    emerging_nodes,
    get_node,
    nodes_between,
)
from repro.tech.patterning import (
    SINGLE_PATTERN_PITCH_NM,
    colors_required,
    masks_for_pitch,
    patterning_for_pitch,
)
from repro.tech.scaling import (
    dennard_power_density,
    density_gain,
    integration_capacity_ratio,
    scale_node,
)

__all__ = [
    "DeviceKind",
    "LithoRegime",
    "TechNode",
    "NODES",
    "NODE_NAMES",
    "get_node",
    "nodes_between",
    "established_nodes",
    "emerging_nodes",
    "SINGLE_PATTERN_PITCH_NM",
    "patterning_for_pitch",
    "colors_required",
    "masks_for_pitch",
    "dennard_power_density",
    "density_gain",
    "integration_capacity_ratio",
    "scale_node",
]
