"""UPF-like power intent: domains, rails, isolation, level shifters.

Rossi: "The same happened with UPF and CPF for the description of the
power intent, with the associated ambiguity in the case of a
multi-vendor flow."  The intent model here is vendor-neutral: domains
with supplies and states, crossings that require isolation cells and
level shifters, and a checker that verifies the intent is "correctly
implemented and consistently verified" (Domic).

Domic also notes "scores of voltage/supply/shutdown domains even at 180
nanometers are common" — the domain-count economics are exercised by
experiment E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PowerDomain:
    """One voltage/supply/shutdown domain.

    ``vdd`` is the domain's nominal supply; ``switchable`` marks
    shutdown-capable domains; ``always_on`` domains may never be
    switched off (e.g. wake-up logic).
    """

    name: str
    vdd: float
    switchable: bool = False
    always_on: bool = False
    blocks: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.switchable and self.always_on:
            raise ValueError("a domain cannot be both switchable and "
                             "always-on")


@dataclass
class IntentViolation:
    """A missing protection cell on a domain crossing."""

    kind: str       # "isolation" or "level_shifter"
    source: str
    sink: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}: {self.source} -> {self.sink}: {self.detail}"


class PowerIntent:
    """A set of domains plus the protection cells on their crossings."""

    #: Level shifters are required when supplies differ by more than
    #: this fraction (small differences are absorbed by margins).
    LEVEL_SHIFT_THRESHOLD = 0.08

    def __init__(self):
        self.domains: dict[str, PowerDomain] = {}
        self.crossings: list[tuple] = []          # (src, dst)
        self.isolation: set = set()               # (src, dst) protected
        self.level_shifters: set = set()          # (src, dst) protected

    # ------------------------------------------------------------------

    def add_domain(self, domain: PowerDomain) -> PowerDomain:
        """Register a domain; names must be unique."""
        if domain.name in self.domains:
            raise ValueError(f"duplicate domain {domain.name!r}")
        self.domains[domain.name] = domain
        return domain

    def connect(self, source: str, sink: str) -> None:
        """Declare that signals cross from ``source`` to ``sink``."""
        for name in (source, sink):
            if name not in self.domains:
                raise KeyError(f"unknown domain {name!r}")
        self.crossings.append((source, sink))

    def add_isolation(self, source: str, sink: str) -> None:
        """Place isolation cells on a crossing."""
        self.isolation.add((source, sink))

    def add_level_shifter(self, source: str, sink: str) -> None:
        """Place level shifters on a crossing."""
        self.level_shifters.add((source, sink))

    # ------------------------------------------------------------------

    def required_isolation(self) -> list:
        """Crossings that need isolation (switchable source)."""
        return [
            (s, d) for s, d in self.crossings
            if self.domains[s].switchable and not self.domains[d].switchable
        ]

    def required_level_shifters(self) -> list:
        """Crossings that need level shifting (supply mismatch)."""
        out = []
        for s, d in self.crossings:
            vs, vd = self.domains[s].vdd, self.domains[d].vdd
            if abs(vs - vd) / max(vs, vd) > self.LEVEL_SHIFT_THRESHOLD:
                out.append((s, d))
        return out

    def check(self) -> list:
        """Verify the intent; returns all violations (empty = clean)."""
        violations = []
        for s, d in self.required_isolation():
            if (s, d) not in self.isolation:
                violations.append(IntentViolation(
                    "isolation", s, d,
                    f"switchable {s!r} drives always-powered {d!r} "
                    f"without isolation"))
        for s, d in self.required_level_shifters():
            if (s, d) not in self.level_shifters:
                vs, vd = self.domains[s].vdd, self.domains[d].vdd
                violations.append(IntentViolation(
                    "level_shifter", s, d,
                    f"{vs:.2f}V -> {vd:.2f}V crossing unshifted"))
        return violations

    def auto_protect(self) -> int:
        """Insert every required protection cell; returns count added."""
        added = 0
        for s, d in self.required_isolation():
            if (s, d) not in self.isolation:
                self.add_isolation(s, d)
                added += 1
        for s, d in self.required_level_shifters():
            if (s, d) not in self.level_shifters:
                self.add_level_shifter(s, d)
                added += 1
        return added

    def domain_count(self) -> int:
        return len(self.domains)

    def protection_cell_overhead(self, cells_per_crossing: int = 8) -> int:
        """Estimated protection cell count for the current intent."""
        return cells_per_crossing * (
            len(self.isolation) + len(self.level_shifters))


def scores_of_domains_intent(num_domains: int = 20,
                             base_vdd: float = 1.8) -> PowerIntent:
    """Build a many-domain intent typical of a modern 180 nm design.

    "Literally, scores of voltage/supply/shutdown domains even at 180
    nanometers are common" (Domic).  A hub-and-spoke topology: an
    always-on control domain plus ``num_domains - 1`` switchable
    function domains at staggered supplies.
    """
    if num_domains < 2:
        raise ValueError("need at least two domains")
    intent = PowerIntent()
    intent.add_domain(PowerDomain("aon_ctrl", base_vdd, always_on=True))
    for k in range(num_domains - 1):
        vdd = base_vdd * (1.0 - 0.05 * (k % 4))
        intent.add_domain(PowerDomain(
            f"func{k}", round(vdd, 3), switchable=True))
        intent.connect(f"func{k}", "aon_ctrl")
        intent.connect("aon_ctrl", f"func{k}")
    return intent
