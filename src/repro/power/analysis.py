"""Switching-activity propagation and power estimation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.circuit import Netlist


class ActivityEstimator:
    """Estimate per-net switching activity by random simulation.

    ``activity`` of a net is the expected number of transitions per
    clock cycle (toggle rate); ``static_prob`` is the probability the
    net is 1.  Simulation-based (Monte Carlo over random input
    vectors), which correctly captures reconvergent fanout that the
    analytic propagation rules miss.
    """

    def __init__(self, netlist: Netlist, *, input_activity: float = 0.5,
                 patterns: int = 256, seed: int = 0):
        if not 0 <= input_activity <= 1:
            raise ValueError("input_activity must be in [0, 1]")
        self.netlist = netlist
        self.input_activity = input_activity
        self.patterns = patterns
        self.seed = seed

    def estimate(self) -> dict:
        """Returns net -> toggle rate in [0, 1]."""
        nl = self.netlist
        rng = np.random.default_rng(self.seed)
        n_pi = len(nl.primary_inputs)
        flops = nl.sequential_gates()
        # Two consecutive vectors per pattern pair; a net toggles when
        # its value differs between them.
        base = rng.random((self.patterns, n_pi)) < 0.5
        flip = rng.random((self.patterns, n_pi)) < self.input_activity
        after = base ^ flip
        state = rng.random((self.patterns, len(flops))) < 0.5

        values_before = self._evaluate(base, state)
        # Sequential designs: next state from the first vector.
        if flops:
            nxt = nl.next_state(base, state)
        else:
            nxt = state
        values_after = self._evaluate(after, nxt)

        rates = {}
        for net in values_before:
            toggles = np.mean(values_before[net] ^ values_after[net])
            rates[net] = float(toggles)
        return rates

    def _evaluate(self, vec: np.ndarray, state: np.ndarray) -> dict:
        nl = self.netlist
        values: dict[str, np.ndarray] = {}
        for i, net in enumerate(nl.primary_inputs):
            values[net] = vec[:, i]
        for q, g in zip(state.T, nl.sequential_gates()):
            values[g.output] = q
        from repro.netlist.circuit import _eval_cell
        for g in nl.topological_gates():
            ins = [values[g.pins[p]] for p in g.cell.inputs]
            values[g.output] = _eval_cell(g.cell, ins, vec.shape[0])
        return values


@dataclass
class PowerReport:
    """Breakdown of a netlist's power at a given clock."""

    dynamic_uw: float
    leakage_uw: float
    clock_uw: float
    freq_ghz: float
    vdd: float

    @property
    def total_uw(self) -> float:
        """Total power in microwatts."""
        return self.dynamic_uw + self.leakage_uw + self.clock_uw

    @property
    def static_fraction(self) -> float:
        """Leakage share of total power — the E5 crossover metric."""
        total = self.total_uw
        return self.leakage_uw / total if total > 0 else 0.0

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.total_uw:.1f} uW @ {self.freq_ghz:.2f} GHz "
            f"(dyn {self.dynamic_uw:.1f}, leak {self.leakage_uw:.1f}, "
            f"clk {self.clock_uw:.1f})"
        )


def power_report(netlist: Netlist, *, freq_ghz: float = 1.0,
                 activities: dict | None = None,
                 input_activity: float = 0.5,
                 vdd: float | None = None,
                 clock_gated_fraction: float = 0.0,
                 patterns: int = 256, seed: int = 0) -> PowerReport:
    """Estimate total power of a mapped netlist.

    Dynamic power sums ``alpha * C * Vdd^2 * f`` per net (driver energy
    plus loads); leakage sums cell leakage scaled to the supply; clock
    power charges every flop's clock pin each cycle, reduced by
    ``clock_gated_fraction`` (the fraction of flops behind clock
    gates).
    """
    node = netlist.library.node
    if vdd is None:
        vdd = node.vdd
    if activities is None:
        activities = ActivityEstimator(
            netlist, input_activity=input_activity,
            patterns=patterns, seed=seed).estimate()
    fanout = netlist.fanout_map()
    vdd_scale = (vdd / node.vdd) ** 2

    dyn_fj_per_cycle = 0.0
    for gate in netlist.gates.values():
        alpha = activities.get(gate.output, 0.0)
        loads = fanout.get(gate.output, [])
        load_ff = sum(g.cell.input_cap_ff for g, _ in loads)
        energy = gate.cell.switch_energy_fj(node.vdd, load_ff) * vdd_scale
        dyn_fj_per_cycle += alpha * energy

    # fJ/cycle * GHz = uW  (1e-15 J * 1e9 /s = 1e-6 W).
    dynamic_uw = dyn_fj_per_cycle * freq_ghz

    # Leakage scales ~linearly with Vdd around nominal (DIBL ignored).
    leakage_uw = netlist.leakage_nw() * (vdd / node.vdd) * 1e-3

    flops = netlist.sequential_gates()
    clk_cap_ff = sum(2.0 * f.cell.input_cap_ff for f in flops)
    active = 1.0 - clock_gated_fraction
    clock_uw = clk_cap_ff * node.vdd ** 2 * vdd_scale * freq_ghz * active

    return PowerReport(dynamic_uw, leakage_uw, clock_uw, freq_ghz, vdd)
