"""UPF-flavored text format for power intent.

Rossi laments the UPF/CPF dualism and "the associated ambiguity in the
case of a multi-vendor flow."  The suite's intent model therefore gets
one unambiguous textual form, close enough to IEEE 1801 to be
recognizable:

```
create_power_domain PD_CPU -vdd 0.9 -switchable
create_power_domain PD_AON -vdd 0.9 -always_on
connect_domains -from PD_CPU -to PD_AON
set_isolation -from PD_CPU -to PD_AON
set_level_shifter -from PD_A -to PD_B
```
"""

from __future__ import annotations

from repro.power.intent import PowerDomain, PowerIntent


def write_upf(intent: PowerIntent) -> str:
    """Serialize a :class:`PowerIntent` to the textual form."""
    lines = []
    for domain in intent.domains.values():
        flags = ""
        if domain.switchable:
            flags += " -switchable"
        if domain.always_on:
            flags += " -always_on"
        lines.append(
            f"create_power_domain {domain.name} "
            f"-vdd {domain.vdd:g}{flags}")
    for src, dst in intent.crossings:
        lines.append(f"connect_domains -from {src} -to {dst}")
    for src, dst in sorted(intent.isolation):
        lines.append(f"set_isolation -from {src} -to {dst}")
    for src, dst in sorted(intent.level_shifters):
        lines.append(f"set_level_shifter -from {src} -to {dst}")
    return "\n".join(lines) + "\n"


def read_upf(text: str) -> PowerIntent:
    """Parse the textual form back into a :class:`PowerIntent`."""
    intent = PowerIntent()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        cmd = tokens[0]
        if cmd == "create_power_domain":
            name = tokens[1]
            opts = _parse_options(tokens[2:], lineno)
            if "vdd" not in opts:
                raise ValueError(f"line {lineno}: domain needs -vdd")
            intent.add_domain(PowerDomain(
                name=name,
                vdd=float(opts["vdd"]),
                switchable="switchable" in opts,
                always_on="always_on" in opts,
            ))
        elif cmd == "connect_domains":
            opts = _parse_options(tokens[1:], lineno)
            intent.connect(opts["from"], opts["to"])
        elif cmd == "set_isolation":
            opts = _parse_options(tokens[1:], lineno)
            intent.add_isolation(opts["from"], opts["to"])
        elif cmd == "set_level_shifter":
            opts = _parse_options(tokens[1:], lineno)
            intent.add_level_shifter(opts["from"], opts["to"])
        else:
            raise ValueError(f"line {lineno}: unknown command {cmd!r}")
    return intent


def _parse_options(tokens: list, lineno: int) -> dict:
    """-flag or -key value pairs."""
    opts: dict = {}
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if not tok.startswith("-"):
            raise ValueError(f"line {lineno}: expected option, got "
                             f"{tok!r}")
        key = tok[1:]
        if i + 1 < len(tokens) and not tokens[i + 1].startswith("-"):
            opts[key] = tokens[i + 1]
            i += 2
        else:
            opts[key] = True
            i += 1
    return opts
