"""The low-power technique catalogue as composable transforms.

Domic: "advanced EDA has made much of 'design for power' techniques
automatic and part of 'standard' design ... a seamless use of a wide
catalogue of techniques."  Each function here models one catalogue
entry; :func:`technique_ladder` stacks them the way a flow would,
producing the E5 technique-by-technique power waterfall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.circuit import Netlist
from repro.power.analysis import ActivityEstimator, PowerReport, power_report


def apply_clock_gating(netlist: Netlist, *, enable_probability: float = 0.3,
                       min_bank: int = 4) -> dict:
    """Model inserting clock gates on flop banks.

    Returns the achievable ``clock_gated_fraction`` and gating overhead.
    Flops whose data activity is far below the clock rate gain from
    gating; ``enable_probability`` is the average fraction of cycles a
    gated bank must still be clocked.
    """
    if not 0 < enable_probability <= 1:
        raise ValueError("enable_probability must be in (0, 1]")
    flops = netlist.sequential_gates()
    if len(flops) < min_bank:
        return {"gated_fraction": 0.0, "effective_clock_scale": 1.0,
                "gates_added": 0}
    activities = ActivityEstimator(netlist, patterns=128).estimate()
    gated = [f for f in flops
             if activities.get(f.pins["D"], 1.0) < 0.25]
    fraction = len(gated) / len(flops)
    banks = max(1, len(gated) // min_bank)
    # Gated flops see the clock only when enabled.
    effective = 1.0 - fraction * (1.0 - enable_probability)
    return {
        "gated_fraction": fraction,
        "effective_clock_scale": effective,
        "gates_added": banks,
    }


def apply_power_gating(idle_fraction: float, *,
                       leakage_retained: float = 0.03,
                       wakeup_overhead: float = 0.01) -> float:
    """Leakage scale factor from shutting idle domains down.

    ``idle_fraction`` of the time the domain is off, retaining
    ``leakage_retained`` of its leakage (retention flops, always-on
    rails); waking costs ``wakeup_overhead`` extra.
    """
    if not 0 <= idle_fraction <= 1:
        raise ValueError("idle_fraction must be in [0, 1]")
    on = 1.0 - idle_fraction
    return on + idle_fraction * leakage_retained + wakeup_overhead * idle_fraction


def apply_dvfs(required_ghz: float, fmax_ghz: float, *,
               vdd_nominal: float, vdd_min: float = 0.6) -> tuple:
    """Voltage/frequency pair meeting a performance requirement.

    Classic alpha-power scaling: frequency tracks roughly linearly with
    Vdd near nominal, so running at ``required_ghz < fmax`` lets the
    supply drop proportionally (floored at ``vdd_min``) and dynamic
    power falls with V^2 f.
    """
    if required_ghz <= 0 or fmax_ghz <= 0:
        raise ValueError("frequencies must be positive")
    if required_ghz >= fmax_ghz:
        return fmax_ghz, vdd_nominal
    scale = required_ghz / fmax_ghz
    vdd = max(vdd_min, vdd_nominal * (0.4 + 0.6 * scale))
    return required_ghz, vdd


@dataclass
class TechniqueLadder:
    """Cumulative power waterfall over the technique catalogue."""

    steps: list = field(default_factory=list)

    def add(self, name: str, report: PowerReport) -> None:
        self.steps.append((name, report))

    def totals(self) -> list:
        """(name, total uW) per rung."""
        return [(name, r.total_uw) for name, r in self.steps]

    def reduction_factor(self) -> float:
        """Total power ratio first rung / last rung."""
        t = self.totals()
        if len(t) < 2 or t[-1][1] == 0:
            return 1.0
        return t[0][1] / t[-1][1]


def technique_ladder(netlist: Netlist, *, freq_ghz: float | None = None,
                     required_ghz: float | None = None,
                     idle_fraction: float = 0.5,
                     seed: int = 0) -> TechniqueLadder:
    """Stack the catalogue on a design and report each rung.

    Rungs: baseline -> clock gating -> multi-Vt (requires a library
    with HVT; applied by the caller via
    :func:`repro.synthesis.sizing.assign_vt` before calling, counted
    here through the netlist's leakage) -> DVFS -> power gating.
    """
    node = netlist.library.node
    if freq_ghz is None:
        freq_ghz = min(1.0, node.fmax_ghz / 4)
    if required_ghz is None:
        required_ghz = freq_ghz * 0.7

    ladder = TechniqueLadder()
    activities = ActivityEstimator(netlist, patterns=256,
                                   seed=seed).estimate()
    base = power_report(netlist, freq_ghz=freq_ghz, activities=activities)
    ladder.add("baseline", base)

    cg = apply_clock_gating(netlist)
    gated = power_report(
        netlist, freq_ghz=freq_ghz, activities=activities,
        clock_gated_fraction=1.0 - cg["effective_clock_scale"])
    ladder.add("clock_gating", gated)

    new_ghz, new_vdd = apply_dvfs(
        required_ghz, freq_ghz, vdd_nominal=node.vdd)
    dvfs = power_report(
        netlist, freq_ghz=new_ghz, activities=activities, vdd=new_vdd,
        clock_gated_fraction=1.0 - cg["effective_clock_scale"])
    ladder.add("dvfs", dvfs)

    leak_scale = apply_power_gating(idle_fraction)
    final = PowerReport(
        dynamic_uw=dvfs.dynamic_uw,
        leakage_uw=dvfs.leakage_uw * leak_scale,
        clock_uw=dvfs.clock_uw,
        freq_ghz=dvfs.freq_ghz,
        vdd=dvfs.vdd,
    )
    ladder.add("power_gating", final)
    return ladder
