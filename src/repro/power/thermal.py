"""Thermal analysis: temperature maps from power maps.

Rossi's ADAS remark — advanced CMOS "compliant with zero PPM quality
standards even when the ICs is asked to work in tough temperature
conditions" — needs a junction-temperature model: the steady-state
heat equation on the die tile grid, solved with the same sparse
machinery as the IR grid.  Leakage feedback (leakage grows with
temperature, which grows heat) is iterated to a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve


@dataclass
class ThermalReport:
    """Result of one thermal solve."""

    temperature_c: np.ndarray     # (ny, nx) junction temperatures
    ambient_c: float
    iterations: int

    @property
    def peak_c(self) -> float:
        return float(self.temperature_c.max())

    @property
    def gradient_c(self) -> float:
        """Peak-to-min on-die temperature difference."""
        return float(self.temperature_c.max() -
                     self.temperature_c.min())

    def hotspots(self, limit_c: float) -> list:
        """[(y, x, temp)] of tiles above the junction limit."""
        out = [
            (int(y), int(x), float(self.temperature_c[y, x]))
            for y, x in zip(*np.where(self.temperature_c > limit_c))
        ]
        out.sort(key=lambda t: -t[2])
        return out


def solve_thermal(power_map_w: np.ndarray, *, tile_mm: float = 1.0,
                  ambient_c: float = 25.0,
                  rth_package_c_per_w: float = 8.0,
                  k_lateral_w_per_c: float = 0.12,
                  leakage_feedback: float = 0.0,
                  max_iterations: int = 10) -> ThermalReport:
    """Steady-state junction temperature of a tiled die.

    Each tile conducts vertically through the package (conductance
    spread over the tiles) and laterally through silicon to its
    neighbors.  ``leakage_feedback`` adds the classic electrothermal
    loop: each kelvin of rise multiplies that tile's power by
    ``1 + leakage_feedback`` per 10 C (iterated to a fixed point; a
    runaway raises ``RuntimeError``).
    """
    p = np.asarray(power_map_w, dtype=float)
    if p.ndim != 2:
        raise ValueError("power map must be 2-D")
    if (p < 0).any():
        raise ValueError("power must be non-negative")
    ny, nx = p.shape
    n = nx * ny
    g_vert = 1.0 / (rth_package_c_per_w * n)   # per-tile to ambient
    g_lat = k_lateral_w_per_c * tile_mm        # tile-to-tile

    def idx(y, x):
        return y * nx + x

    rows, cols, vals = [], [], []
    for y in range(ny):
        for x in range(nx):
            i = idx(y, x)
            diag = g_vert
            for dy, dx in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                yy, xx = y + dy, x + dx
                if 0 <= yy < ny and 0 <= xx < nx:
                    j = idx(yy, xx)
                    diag += g_lat
                    rows.append(i)
                    cols.append(j)
                    vals.append(-g_lat)
            rows.append(i)
            cols.append(i)
            vals.append(diag)
    a = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))

    power = p.copy()
    temp = np.full((ny, nx), ambient_c)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        b = power.reshape(-1) + g_vert * ambient_c
        t = spsolve(a, b).reshape(ny, nx)
        if leakage_feedback <= 0:
            temp = t
            break
        rise = np.clip(t - ambient_c, 0, None)
        new_power = p * (1.0 + leakage_feedback) ** (rise / 10.0)
        if new_power.max() > 100 * p.max() + 1e-9:
            raise RuntimeError("electrothermal runaway")
        if np.allclose(t, temp, atol=0.05):
            temp = t
            break
        temp = t
        power = new_power
    return ThermalReport(temp, ambient_c, iterations)


def derate_for_temperature(node, temp_c: float, *,
                           ref_c: float = 25.0) -> dict:
    """Speed and leakage derating factors at a junction temperature.

    Mobility falls ~0.2%/C (slower cells); subthreshold leakage roughly
    doubles every 25 C.  These feed signoff corners for the ADAS
    temperature-range story.
    """
    dt = temp_c - ref_c
    return {
        "delay_factor": 1.0 + 0.002 * dt,
        "leakage_factor": 2.0 ** (dt / 25.0),
    }
