"""The dark-silicon budget model.

Domic: "'Design for power' was an enabler that prevented massive amounts
of 'dark silicon'."  Post-Dennard, a die's achievable power density
outgrows what the package can cool, so a growing fraction of the chip
must stay dark — unless design-for-power techniques bend the curve.
This model quantifies both sides for experiment E5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.library import get_node
from repro.tech.node import TechNode


@dataclass
class DarkSiliconModel:
    """Power-limited utilization of a die at a node.

    ``tdp_w_per_mm2`` is the cooling limit (package + heatsink);
    ``activity`` the average switching activity of the lit logic.
    """

    tdp_w_per_mm2: float = 0.5
    activity: float = 0.1

    def lit_fraction(self, node: str | TechNode, *,
                     freq_ghz: float | None = None,
                     power_technique_factor: float = 1.0) -> float:
        """Fraction of the die that can be powered simultaneously.

        ``power_technique_factor`` < 1 models the catalogue of design-
        for-power techniques (clock gating, DVFS, multi-Vt, power
        gating) scaling the raw density down.
        """
        n = node if isinstance(node, TechNode) else get_node(node)
        if power_technique_factor <= 0:
            raise ValueError("power_technique_factor must be positive")
        density = n.power_density_w_per_mm2(
            activity=self.activity, freq_ghz=freq_ghz)
        density *= power_technique_factor
        if density <= 0:
            return 1.0
        return min(1.0, self.tdp_w_per_mm2 / density)

    def dark_fraction(self, node: str | TechNode, **kwargs) -> float:
        """1 - lit fraction."""
        return 1.0 - self.lit_fraction(node, **kwargs)


def dark_silicon_fraction(node: str | TechNode, *,
                          tdp_w_per_mm2: float = 0.5,
                          activity: float = 0.1,
                          power_technique_factor: float = 1.0) -> float:
    """One-call dark-silicon fraction at a node."""
    model = DarkSiliconModel(tdp_w_per_mm2, activity)
    return model.dark_fraction(
        node, power_technique_factor=power_technique_factor)
