"""Power-grid IR-drop analysis, hot spots, and automatic decap insertion.

Rossi (E9): networking ASICs run at "switching activities in excess of
5X if compared to most of standard processors: the management of the
power density and the removal of hot spots cannot rely on any automatic
tool.  The identification of the most critical situations and the
on-the-fly introduction of decoupling cells ... should be one of the key
parameters the tool itself should take care [of]."

This module is that missing automatic tool: a grid model solved with a
sparse linear system (conductance Laplacian), hot-spot extraction, and
a greedy decap/spreading loop driven by the violation map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve


@dataclass
class GridReport:
    """Result of one IR-drop solve."""

    drop_mv: np.ndarray        # (ny, nx) static IR drop per tile, mV
    worst_drop_mv: float
    hotspots: list             # [(y, x, drop_mv)] above threshold
    threshold_mv: float

    @property
    def violation_count(self) -> int:
        return len(self.hotspots)

    def worst_tile(self) -> tuple:
        """(y, x) of the worst-drop tile."""
        idx = np.unravel_index(np.argmax(self.drop_mv), self.drop_mv.shape)
        return int(idx[0]), int(idx[1])


@dataclass
class DecapPlan:
    """Decap insertions chosen by the automatic loop."""

    placements: list = field(default_factory=list)  # (y, x, cap_ff)
    total_cap_ff: float = 0.0
    iterations: int = 0

    def count(self) -> int:
        return len(self.placements)


class PowerGrid:
    """A uniform 2-D power grid over a placed die.

    The die is tiled ``nx`` by ``ny``; each tile draws its current from
    the grid, modeled as a resistive mesh with ideal pads on the four
    edges (flip-chip style pad ring).  ``tile_current_ma`` is set from
    a placement's per-tile power density.
    """

    def __init__(self, nx: int, ny: int, *, vdd: float,
                 strap_res_ohm: float = 0.05):
        if nx < 2 or ny < 2:
            raise ValueError("grid must be at least 2x2")
        self.nx = nx
        self.ny = ny
        self.vdd = vdd
        self.strap_res_ohm = strap_res_ohm
        self.tile_current_ma = np.zeros((ny, nx))
        self.decap_ff = np.zeros((ny, nx))

    # ------------------------------------------------------------------

    def set_current_from_power(self, power_uw: np.ndarray) -> None:
        """Per-tile current from a per-tile power map (uW)."""
        power_uw = np.asarray(power_uw, dtype=float)
        if power_uw.shape != (self.ny, self.nx):
            raise ValueError("power map shape mismatch")
        self.tile_current_ma = power_uw * 1e-3 / self.vdd

    def solve(self, *, threshold_fraction: float = 0.05,
              dynamic_peak_ratio: float = 3.0) -> GridReport:
        """Static + first-order dynamic IR-drop solve.

        The mesh Laplacian is solved for node voltages with edge pads
        held at Vdd.  Dynamic droop is approximated by scaling each
        tile's current by ``dynamic_peak_ratio``, mitigated locally by
        the charge available in that tile's decap (each fF of decap
        absorbs part of the peak; the mitigation saturates).
        """
        n = self.nx * self.ny
        g = 1.0 / self.strap_res_ohm

        def idx(y, x):
            return y * self.nx + x

        rows, cols, vals = [], [], []
        b = np.zeros(n)
        pad = np.zeros(n, dtype=bool)
        for y in range(self.ny):
            for x in range(self.nx):
                i = idx(y, x)
                if x in (0, self.nx - 1) or y in (0, self.ny - 1):
                    pad[i] = True
        # Effective peak current after local decap mitigation.
        decap_relief = 1.0 + self.decap_ff / 500.0   # 500 fF halves peak
        peak = (self.tile_current_ma * 1e-3 *
                (1.0 + (dynamic_peak_ratio - 1.0) / decap_relief))

        for y in range(self.ny):
            for x in range(self.nx):
                i = idx(y, x)
                if pad[i]:
                    rows.append(i)
                    cols.append(i)
                    vals.append(1.0)
                    b[i] = self.vdd
                    continue
                diag = 0.0
                for dy, dx in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                    yy, xx = y + dy, x + dx
                    if 0 <= yy < self.ny and 0 <= xx < self.nx:
                        j = idx(yy, xx)
                        diag += g
                        if pad[j]:
                            b[i] += g * self.vdd
                        else:
                            rows.append(i)
                            cols.append(j)
                            vals.append(-g)
                rows.append(i)
                cols.append(i)
                vals.append(diag)
                b[i] -= peak[y, x]
        a = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
        v = spsolve(a, b)
        drop_mv = (self.vdd - v.reshape(self.ny, self.nx)) * 1000.0
        drop_mv = np.clip(drop_mv, 0.0, None)
        threshold_mv = self.vdd * threshold_fraction * 1000.0
        hotspots = [
            (int(y), int(x), float(drop_mv[y, x]))
            for y, x in zip(*np.where(drop_mv > threshold_mv))
        ]
        hotspots.sort(key=lambda t: -t[2])
        return GridReport(drop_mv, float(drop_mv.max()), hotspots,
                          threshold_mv)


def insert_decaps(grid: PowerGrid, *, budget_ff: float = 50000.0,
                  step_ff: float = 1000.0, max_iterations: int = 200,
                  threshold_fraction: float = 0.05,
                  dynamic_peak_ratio: float = 3.0) -> DecapPlan:
    """The automatic hot-spot removal loop Rossi asks for.

    Repeatedly solves the grid, places ``step_ff`` of decap on the
    worst violating tile, and stops when the map is clean or the
    budget is spent.  Mutates ``grid.decap_ff``.
    """
    plan = DecapPlan()
    spent = 0.0
    for iteration in range(max_iterations):
        report = grid.solve(threshold_fraction=threshold_fraction,
                            dynamic_peak_ratio=dynamic_peak_ratio)
        if not report.hotspots:
            break
        if spent + step_ff > budget_ff:
            break
        y, x, _ = report.hotspots[0]
        grid.decap_ff[y, x] += step_ff
        plan.placements.append((y, x, step_ff))
        spent += step_ff
        plan.iterations = iteration + 1
    plan.total_cap_ff = spent
    return plan


def spread_hotspots(grid: PowerGrid, *, iterations: int = 50,
                    threshold_fraction: float = 0.05,
                    transfer: float = 0.15, radius: int = 3) -> int:
    """Placement-side hot-spot mitigation: diffuse current outward.

    Models cell spreading / power-aware placement retrofit: each pass
    moves ``transfer`` of the worst tile's current to the least-loaded
    tile within ``radius`` (a placement region move, not just a nudge).
    Complements :func:`insert_decaps`, which only fixes the dynamic
    (peak) component.  Returns the number of moves made.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    moves = 0
    for _ in range(iterations):
        report = grid.solve(threshold_fraction=threshold_fraction)
        if not report.hotspots:
            break
        y, x, _ = report.hotspots[0]
        candidates = [
            (yy, xx)
            for yy in range(max(0, y - radius),
                            min(grid.ny, y + radius + 1))
            for xx in range(max(0, x - radius),
                            min(grid.nx, x + radius + 1))
            if (yy, xx) != (y, x)
        ]
        dest = min(candidates, key=lambda t: grid.tile_current_ma[t])
        amount = grid.tile_current_ma[y, x] * transfer
        grid.tile_current_ma[y, x] -= amount
        grid.tile_current_ma[dest] += amount
        moves += 1
    return moves


def power_density_map(nx: int, ny: int, total_uw: float, *,
                      hotspot_tiles: list | None = None,
                      hotspot_multiplier: float = 5.0,
                      seed: int = 0) -> np.ndarray:
    """Synthesize a per-tile power map with optional hot tiles.

    ``hotspot_tiles`` get ``hotspot_multiplier`` times the average
    density — the crossbar-core profile of a networking ASIC (E9).
    """
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.7, 1.3, size=(ny, nx))
    if hotspot_tiles:
        for y, x in hotspot_tiles:
            base[y, x] *= hotspot_multiplier
    return base * (total_uw / base.sum())
