"""Power analysis and the low-power technique catalogue.

Domic's position dates the power crisis precisely: "Voltage scaling use
increased at 130 nanometers, when the dynamic power reduction started to
be offset by the static power increase.  At 90/65 nanometers, it became
virtually impossible to design an IC without using sophisticated power
reduction techniques."  This package provides:

* :mod:`repro.power.analysis` — switching-activity propagation and
  dynamic/leakage power estimation on mapped netlists.
* :mod:`repro.power.techniques` — clock gating, multi-Vt, power gating,
  DVFS, and voltage-domain partitioning as composable transforms.
* :mod:`repro.power.intent` — a UPF-like power-intent model with
  consistency checks (isolation/level shifters), echoing the UPF/CPF
  dualism Rossi laments.
* :mod:`repro.power.grid` — power-grid IR-drop analysis, hot-spot
  detection, and automatic decap insertion (E9).
* :mod:`repro.power.dark` — the dark-silicon budget model (E5).
"""

from repro.power.analysis import (
    ActivityEstimator,
    PowerReport,
    power_report,
)
from repro.power.techniques import (
    TechniqueLadder,
    apply_clock_gating,
    apply_dvfs,
    apply_power_gating,
    technique_ladder,
)
from repro.power.intent import (
    IntentViolation,
    PowerDomain,
    PowerIntent,
)
from repro.power.grid import (
    DecapPlan,
    GridReport,
    PowerGrid,
    insert_decaps,
)
from repro.power.dark import dark_silicon_fraction, DarkSiliconModel
from repro.power.thermal import (
    ThermalReport,
    derate_for_temperature,
    solve_thermal,
)

__all__ = [
    "ActivityEstimator",
    "PowerReport",
    "power_report",
    "TechniqueLadder",
    "technique_ladder",
    "apply_clock_gating",
    "apply_power_gating",
    "apply_dvfs",
    "PowerDomain",
    "PowerIntent",
    "IntentViolation",
    "PowerGrid",
    "GridReport",
    "DecapPlan",
    "insert_decaps",
    "DarkSiliconModel",
    "dark_silicon_fraction",
    "ThermalReport",
    "solve_thermal",
    "derate_for_temperature",
]
