"""panelkit: a mini EDA suite reproducing the DATE 2016 panel
"Looking Backwards and Forwards" (Casale-Rossi et al.).

The panel paper contains no algorithm of its own; it is a set of position
statements about what EDA accomplished between 90 nm and 10 nm and what it
must do next.  This library builds the systems those statements are about —
logic synthesis, placement, routing, computational lithography,
multi-patterning, power methodology, DFT, smart-system co-design, market
modeling — and a benchmark harness that re-derives every quantified claim
in the panel from first principles.

Sub-packages
------------
tech       Technology-node models (250 nm .. 5 nm), the spine of the suite.
netlist    Boolean functions, AIGs, gate-level netlists, design generators.
synthesis  Two-level and multi-level logic optimization, tech mapping.
timing     Static timing analysis.
power      Power analysis and low-power design techniques.
floorplan  Slicing floorplanner and power-grid synthesis.
place      Global/detailed placement, flat vs hierarchical flows.
route      Maze and line-search routers, layer assignment, congestion.
litho      Aerial-image simulation, OPC, multi-patterning decomposition.
dft        Scan insertion/reordering, fault simulation, test compression.
mfg        Yield and cost models (wafer, mask, die, NRE).
smartsys   Heterogeneous smart-system (SiP/3D) co-design.
learn      Self-learning implementation engine (run DB + knob tuning).
market     Design-start distributions, IoT forecasting, roadmap.
analog     SERDES/ADC/TCAM models and the IP-porting timeline.
sim        Event-driven timing simulation and glitch power.
core       Flow orchestration, multi-corner signoff, panel analytics.
"""

__version__ = "1.0.0"

from repro.tech import NODES, TechNode, get_node  # noqa: F401
