"""Computational lithography: aerial images, OPC, multi-patterning.

Sawicki: "computational lithography has been one of the primary enablers
of feature scaling in the absence of EUV."  Rossi: "RET, OPC and
multi-patterning techniques have made possible the bring up of 14nm and
10nm without introducing ... EUV."  Domic: sub-80nm-pitch interconnect
needs double/triple/quadruple patterning, and EDA made that automatic.

* :mod:`repro.litho.aerial` — scalar aerial-image simulation (Gaussian
  point-spread kernel), resist thresholding, and EPE measurement (E12).
* :mod:`repro.litho.opc` — iterative model-based OPC on edge fragments.
* :mod:`repro.litho.mpd` — conflict graphs over wire segments, k-mask
  coloring with stitch insertion (E3).
* :mod:`repro.litho.wires` — wire-pattern generators (synthetic and
  from routed designs).
"""

from repro.litho.aerial import (
    LithoSystem,
    aerial_image,
    edge_placement_errors,
    print_image,
)
from repro.litho.opc import OpcResult, apply_opc
from repro.litho.mpd import (
    DecompositionResult,
    build_conflict_graph,
    decompose,
)
from repro.litho.ret import (
    SrafResult,
    insert_srafs,
    isolated_line_mask,
    process_window,
)
from repro.litho.wires import (
    WireSegment,
    dense_line_mask,
    random_track_wires,
    wires_from_routing,
)

__all__ = [
    "LithoSystem",
    "aerial_image",
    "print_image",
    "edge_placement_errors",
    "OpcResult",
    "apply_opc",
    "WireSegment",
    "random_track_wires",
    "wires_from_routing",
    "dense_line_mask",
    "build_conflict_graph",
    "decompose",
    "DecompositionResult",
    "SrafResult",
    "insert_srafs",
    "isolated_line_mask",
    "process_window",
]
