"""EUV insertion economics: when single-exposure EUV beats the ladder.

Sawicki: computational lithography "will continue even after the
eventual introduction of EUV as feature sizes at that node will be
small enough to continue to require computational lithography to
enable viable yield."  The insertion question is economic: an EUV
exposure replaces k 193i mask/etch passes at a higher per-pass cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.library import NODES, get_node
from repro.tech.node import LithoRegime, TechNode
from repro.tech.patterning import (
    mask_layer_cost_multiplier,
    patterning_for_pitch,
)


@dataclass
class LayerPatterningCost:
    """Cost comparison for one layer at one node."""

    node: str
    pitch_nm: float
    regime_193i: LithoRegime
    cost_193i: float
    cost_euv: float
    euv_wins: bool


def compare_euv(node: str | TechNode, *,
                euv_cost_multiplier: float = 3.0) -> LayerPatterningCost:
    """Price one critical layer both ways at a node.

    ``euv_cost_multiplier`` is the per-exposure premium of an EUV pass
    over a single 193i pass (tool depreciation dominates).
    """
    n = node if isinstance(node, TechNode) else get_node(node)
    # Use the node's own industry regime (which includes the 2-D cut/
    # block steps a pure pitch calculation misses); fall back to the
    # pitch-derived regime for hypothetical nodes marked EUV.
    regime = n.litho
    if regime is LithoRegime.EUV:
        regime = patterning_for_pitch(n.metal1_pitch_nm)
    cost_193i = mask_layer_cost_multiplier(regime)
    return LayerPatterningCost(
        node=n.name,
        pitch_nm=n.metal1_pitch_nm,
        regime_193i=regime,
        cost_193i=cost_193i,
        cost_euv=euv_cost_multiplier,
        euv_wins=euv_cost_multiplier < cost_193i,
    )


def euv_insertion_node(*, euv_cost_multiplier: float = 3.0) -> str:
    """First canonical node (largest feature) where EUV is cheaper.

    With the default premium, EUV loses to LELE (2.2x) and only wins
    once triple patterning or worse is required — the industry's actual
    7/5 nm insertion history.
    """
    for node in NODES.values():
        if compare_euv(node,
                       euv_cost_multiplier=euv_cost_multiplier).euv_wins:
            return node.name
    return "none"


def still_needs_opc(node: str | TechNode, *,
                    euv_resolution_fraction: float = 0.6) -> bool:
    """Sawicki's caveat: EUV features still need computational litho.

    True when the node's pitch sits below ``euv_resolution_fraction``
    of the EUV single-exposure comfortable regime — small enough that
    even EUV images need correction for viable yield.
    """
    from repro.litho.aerial import EUV_135

    n = node if isinstance(node, TechNode) else get_node(node)
    comfortable = EUV_135.rayleigh_pitch_nm / euv_resolution_fraction
    return n.metal1_pitch_nm < comfortable
