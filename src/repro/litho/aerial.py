"""Scalar aerial-image simulation and edge-placement error metrology.

The optical system is modeled by a Gaussian point-spread function of
width proportional to ``wavelength / NA`` — the standard first-order
scalar approximation.  It reproduces the behaviour the experiments
need: contrast collapses as pitch approaches the resolution limit
(~80 nm pitch for 193i, per the panel), and splitting a dense pattern
onto two masks restores it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class LithoSystem:
    """An exposure tool.

    ``k_psf`` converts wavelength/NA into the Gaussian PSF sigma; 0.17
    calibrates the 193i single-exposure cliff (under a +/-10% dose
    window) to the panel's ~80 nm pitch.  A Gaussian is pessimistic
    relative to partially coherent imaging, hence the small k.
    """

    wavelength_nm: float = 193.0
    na: float = 1.35
    k_psf: float = 0.17

    @property
    def psf_sigma_nm(self) -> float:
        """Point-spread sigma in nm."""
        return self.k_psf * self.wavelength_nm / self.na

    @property
    def rayleigh_pitch_nm(self) -> float:
        """Resolution-limit pitch estimate (k1 = 0.28 two-beam)."""
        return 2 * 0.28 * self.wavelength_nm / self.na


#: The workhorse 193 nm immersion scanner.
IMMERSION_193 = LithoSystem(193.0, 1.35)
#: An EUV scanner (13.5 nm, NA 0.33).
EUV_135 = LithoSystem(13.5, 0.33)


def aerial_image(mask: np.ndarray, pixel_nm: float,
                 system: LithoSystem = IMMERSION_193) -> np.ndarray:
    """Intensity image of a binary mask (1 = open chrome).

    Gaussian blur with the system PSF; intensity normalized so a large
    open area prints at 1.0.
    """
    mask = np.asarray(mask, dtype=float)
    if pixel_nm <= 0:
        raise ValueError("pixel size must be positive")
    sigma_px = system.psf_sigma_nm / pixel_nm
    return ndimage.gaussian_filter(mask, sigma=sigma_px, mode="nearest")


def print_image(intensity: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Constant-threshold resist model: developed area."""
    if not 0 < threshold < 1:
        raise ValueError("threshold must be in (0, 1)")
    return intensity >= threshold


def edge_placement_errors(target: np.ndarray, printed: np.ndarray,
                          pixel_nm: float, *, axis: int = 1) -> np.ndarray:
    """EPE samples along feature edges, in nm.

    For each scanline, every target edge (0/1 transition along
    ``axis``) is matched to the nearest printed edge of the same
    direction; the signed distance is the EPE.  Unmatched edges (the
    feature failed to print or bridged) get an EPE of the scan width —
    a catastrophic value that dominates the statistics, as it should.
    """
    target = np.asarray(target, dtype=bool)
    printed = np.asarray(printed, dtype=bool)
    if target.shape != printed.shape:
        raise ValueError("target/printed shape mismatch")
    if axis == 0:
        target = target.T
        printed = printed.T
    n_rows, n_cols = target.shape
    worst = n_cols * pixel_nm
    out = []
    for r in range(n_rows):
        t_edges = _edges(target[r])
        p_edges = _edges(printed[r])
        for pos, rising in t_edges:
            same = [p for p, pr in p_edges if pr == rising]
            if not same:
                out.append(worst)
                continue
            nearest = min(same, key=lambda p: abs(p - pos))
            out.append((nearest - pos) * pixel_nm)
    return np.array(out)


def _edges(row: np.ndarray) -> list:
    """[(index, is_rising)] transitions of a binary scanline."""
    diff = np.diff(row.astype(np.int8))
    out = []
    for idx in np.nonzero(diff)[0]:
        out.append((idx + 0.5, diff[idx] > 0))
    return out


def pattern_fidelity(target: np.ndarray, printed: np.ndarray) -> float:
    """Fraction of pixels printed correctly (IoU-style score)."""
    target = np.asarray(target, dtype=bool)
    printed = np.asarray(printed, dtype=bool)
    union = np.logical_or(target, printed).sum()
    if union == 0:
        return 1.0
    return float(np.logical_and(target, printed).sum() / union)


def printability(target: np.ndarray, pixel_nm: float,
                 system: LithoSystem = IMMERSION_193, *,
                 mask: np.ndarray | None = None,
                 epe_spec_nm: float | None = None,
                 dose_latitude: float = 0.10) -> dict:
    """Process-window print check: expose, measure EPE at dose corners.

    The mask (``target`` itself unless an OPC'd ``mask`` is supplied)
    is imaged once; the resist threshold is then evaluated at nominal
    and at the +/-``dose_latitude`` corners — low-contrast images shift
    wildly across the dose window, which is what actually kills
    sub-resolution pitches.  ``epe_spec_nm`` defaults to 10% of the
    system's resolution-limit pitch.
    """
    if mask is None:
        mask = target
    intensity = aerial_image(mask, pixel_nm, system)
    if epe_spec_nm is None:
        epe_spec_nm = 0.1 * system.rayleigh_pitch_nm
    worst_rms = 0.0
    worst_max = 0.0
    nominal_fidelity = None
    for thr in (0.5, 0.5 * (1 - dose_latitude), 0.5 * (1 + dose_latitude)):
        printed = print_image(intensity, thr)
        epe = edge_placement_errors(target, printed, pixel_nm)
        if nominal_fidelity is None:
            nominal_fidelity = pattern_fidelity(target, printed)
        if epe.size:
            worst_rms = max(worst_rms, float(np.sqrt(np.mean(epe ** 2))))
            worst_max = max(worst_max, float(np.max(np.abs(epe))))
    return {
        "rms_epe_nm": worst_rms,
        "max_epe_nm": worst_max,
        "fidelity": nominal_fidelity,
        "passes": bool(worst_max <= epe_spec_nm),
        "epe_spec_nm": epe_spec_nm,
    }
