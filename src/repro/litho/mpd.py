"""Multi-patterning decomposition: conflict graphs, coloring, stitches.

Two wires on the same layer closer than the same-mask spacing must go
on different masks; decomposing a layer is coloring its conflict graph
with the regime's mask count.  When a component is not k-colorable,
long wires may be *stitched* — split into two segments on different
masks — trading a small overlay/yield cost for decomposability.  This
is the machinery Domic says advanced EDA made "automated, hiding and
waiving its complexity" (E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.litho.wires import WireSegment


def build_conflict_graph(wires: list, *, pitch_nm: float,
                         min_same_mask_pitch_nm: float = 80.0) -> nx.Graph:
    """Conflict graph: edge when same-mask placement would violate.

    Wires on tracks within ``ceil(min_pitch / pitch) - 1`` of each
    other whose spans overlap conflict.  The graph carries each wire in
    a node attribute ``wire``.
    """
    if pitch_nm <= 0:
        raise ValueError("pitch must be positive")
    reach = int(min_same_mask_pitch_nm / pitch_nm - 1e-9)
    graph = nx.Graph()
    for i, w in enumerate(wires):
        graph.add_node(i, wire=w)
    by_track: dict[int, list] = {}
    for i, w in enumerate(wires):
        by_track.setdefault(w.track, []).append(i)
    for i, w in enumerate(wires):
        for dt in range(1, reach + 1):
            for j in by_track.get(w.track + dt, ()):
                if w.overlaps(wires[j]):
                    graph.add_edge(i, j)
    return graph


@dataclass
class DecompositionResult:
    """Outcome of a k-mask decomposition."""

    colors: dict                 # node -> mask index
    k: int
    conflicts: list              # [(i, j)] same-mask violations left
    stitches: list = field(default_factory=list)   # [(node, position)]
    components: int = 0

    @property
    def success(self) -> bool:
        return not self.conflicts

    def mask_balance(self) -> list:
        """Wire count per mask."""
        out = [0] * self.k
        for c in self.colors.values():
            out[c] += 1
        return out


def decompose(graph: nx.Graph, k: int, *,
              allow_stitches: bool = False,
              max_stitches: int = 1000) -> DecompositionResult:
    """Color the conflict graph with ``k`` masks.

    Exact bipartite 2-coloring when ``k == 2``; greedy
    largest-degree-first with local Kempe-style repair otherwise.
    With ``allow_stitches`` unresolvable nodes are split at the
    midpoint of their span — both halves recolored — which resolves
    odd cycles the way production decomposers do.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    graph = graph.copy()
    stitches = []
    next_node = (max(graph.nodes) + 1) if graph.nodes else 0

    def color_once(g: nx.Graph) -> dict:
        if k == 2:
            colors = {}
            for comp in nx.connected_components(g):
                sub = g.subgraph(comp)
                try:
                    left, right = nx.bipartite.sets(sub)
                    for n in left:
                        colors[n] = 0
                    for n in right:
                        colors[n] = 1
                except nx.NetworkXError:
                    # Odd cycle: greedy fallback marks the conflict.
                    colors.update(nx.greedy_color(
                        sub, strategy="largest_first"))
            return {n: min(c, k - 1) for n, c in colors.items()}
        colors = nx.greedy_color(graph, strategy="saturation_largest_first")
        return {n: min(c, k - 1) for n, c in colors.items()}

    for _ in range(max_stitches + 1):
        colors = color_once(graph)
        conflicts = [
            (i, j) for i, j in graph.edges if colors[i] == colors[j]
        ]
        if not conflicts or not allow_stitches:
            break
        # Stitch the highest-degree endpoint of the first conflict.
        i, j = conflicts[0]
        node = i if graph.degree[i] >= graph.degree[j] else j
        wire: WireSegment = graph.nodes[node]["wire"]
        if wire.length < 2.0:
            # Too short to stitch: give up on this conflict.
            break
        mid = (wire.start + wire.end) / 2
        left = WireSegment(wire.track, wire.start, mid, wire.net)
        right = WireSegment(wire.track, mid, wire.end, wire.net)
        neighbors = list(graph.neighbors(node))
        graph.remove_node(node)
        a, b = next_node, next_node + 1
        next_node += 2
        graph.add_node(a, wire=left)
        graph.add_node(b, wire=right)
        for nb in neighbors:
            other: WireSegment = graph.nodes[nb]["wire"]
            if left.overlaps(other):
                graph.add_edge(a, nb)
            if right.overlaps(other):
                graph.add_edge(b, nb)
        stitches.append((node, mid))
    return DecompositionResult(
        colors=colors,
        k=k,
        conflicts=conflicts,
        stitches=stitches,
        components=nx.number_connected_components(graph),
    )


def min_masks_needed(graph: nx.Graph, *, max_k: int = 8,
                     allow_stitches: bool = False) -> int:
    """Smallest k that decomposes the layer (possibly with stitches).

    Returns ``max_k + 1`` if even ``max_k`` masks fail.
    """
    for k in range(1, max_k + 1):
        if decompose(graph, k, allow_stitches=allow_stitches).success:
            return k
    return max_k + 1


def decomposition_rate(wires: list, *, pitch_nm: float, k: int,
                       min_same_mask_pitch_nm: float = 80.0,
                       allow_stitches: bool = True) -> dict:
    """Summary statistics for one (pitch, k) decomposition run."""
    graph = build_conflict_graph(
        wires, pitch_nm=pitch_nm,
        min_same_mask_pitch_nm=min_same_mask_pitch_nm)
    result = decompose(graph, k, allow_stitches=allow_stitches)
    return {
        "wires": len(wires),
        "conflict_edges": graph.number_of_edges(),
        "k": k,
        "success": result.success,
        "unresolved": len(result.conflicts),
        "stitches": len(result.stitches),
    }
