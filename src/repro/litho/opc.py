"""Model-based OPC: iterative edge-fragment correction.

The mask is adjusted pixel-column by pixel-column: wherever the printed
edge lands inside the target the mask is locally widened, and vice
versa — the feedback loop at the heart of production OPC, on a scalar
imaging model.  Used by E12 to show computational lithography buying
back printability without EUV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.litho.aerial import (
    LithoSystem,
    IMMERSION_193,
    aerial_image,
    edge_placement_errors,
    print_image,
)


@dataclass
class OpcResult:
    """Outcome of an OPC run."""

    mask: np.ndarray
    iterations: int
    rms_epe_before_nm: float
    rms_epe_after_nm: float
    converged: bool

    @property
    def improvement(self) -> float:
        """EPE reduction ratio (before / after)."""
        if self.rms_epe_after_nm == 0:
            return float("inf")
        return self.rms_epe_before_nm / self.rms_epe_after_nm


def apply_opc(target: np.ndarray, pixel_nm: float,
              system: LithoSystem = IMMERSION_193, *,
              iterations: int = 12, gain: float = 0.8,
              converge_nm: float = 1.0) -> OpcResult:
    """Iteratively correct the mask so the print matches the target.

    The mask is kept gray-scale internally (continuous transmission,
    modeling sub-resolution fragment movement) and the correction step
    adds ``gain * error`` blurred to the fragment scale; the exposed
    image is evaluated against the binary target each round.
    """
    target = np.asarray(target, dtype=float)
    mask = target.copy()
    before = None
    rms = float("inf")
    it = 0
    sigma_px = max(system.psf_sigma_nm / pixel_nm / 2.0, 0.5)
    for it in range(1, iterations + 1):
        intensity = aerial_image(mask, pixel_nm, system)
        printed = print_image(intensity)
        epe = edge_placement_errors(
            target.astype(bool), printed, pixel_nm)
        rms = float(np.sqrt(np.mean(epe ** 2))) if epe.size else 0.0
        if before is None:
            before = rms
        if rms <= converge_nm:
            break
        # Feedback: where intensity is low inside the target, add
        # transmission; where high outside, remove.
        error = target - intensity
        correction = ndimage.gaussian_filter(
            error, sigma=sigma_px, mode="nearest")
        mask = np.clip(mask + gain * correction, 0.0, 1.5)
    return OpcResult(
        mask=mask,
        iterations=it,
        rms_epe_before_nm=before if before is not None else 0.0,
        rms_epe_after_nm=rms,
        converged=rms <= converge_nm,
    )
