"""Resolution enhancement techniques beyond OPC: assist features.

Rossi credits "RET, OPC and multi-patterning" jointly.  The RET
modeled here is SRAF (sub-resolution assist feature) insertion:
isolated lines print with a much smaller process window than dense
ones because they lack the neighbors that sharpen the image; placing
narrow assist bars — below the printing threshold themselves —
restores a dense-like environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.litho.aerial import (
    IMMERSION_193,
    LithoSystem,
    aerial_image,
    print_image,
)


@dataclass
class SrafResult:
    """Outcome of assist-feature insertion."""

    mask: np.ndarray
    assists_added: int
    assist_printed: bool          # True = SRAF violation (it printed)


def insert_srafs(target: np.ndarray, pixel_nm: float, *,
                 system: LithoSystem = IMMERSION_193,
                 offset_nm: float | None = None,
                 width_nm: float | None = None) -> SrafResult:
    """Place assist bars alongside isolated vertical features.

    A column is "isolated" when it carries a feature edge with no other
    feature within ~1.5 PSF sigma.  Assist bars of sub-resolution width
    are placed ``offset_nm`` away on the empty side, then checked not
    to print themselves.
    """
    target = np.asarray(target, dtype=bool)
    if offset_nm is None:
        offset_nm = 1.2 * system.psf_sigma_nm
    if width_nm is None:
        width_nm = 0.8 * system.psf_sigma_nm
    offset_px = max(2, int(round(offset_nm / pixel_nm)))
    width_px = max(1, int(round(width_nm / pixel_nm)))
    # Isolation requirement: the assist must fit with clearance on the
    # empty side — otherwise the neighbor IS the assist (dense case).
    clearance_px = max(2, int(round(0.5 * system.psf_sigma_nm
                                    / pixel_nm)))
    search_px = offset_px + width_px + clearance_px

    mask = target.astype(float)
    occupied = target.any(axis=0)
    added = 0
    cols = target.shape[1]
    for edge in _vertical_edges(occupied):
        col, rising = edge
        # Free side: left of a rising edge, right of a falling edge.
        direction = -1 if rising else 1
        start = col + direction * offset_px
        stop = start + direction * width_px
        lo, hi = sorted((start, stop))
        if lo < 0 or hi >= cols:
            continue
        window_lo = min(col + direction, col + direction * search_px)
        window_hi = max(col + direction, col + direction * search_px)
        window_lo = max(window_lo, 0)
        window_hi = min(window_hi, cols - 1)
        if occupied[window_lo:window_hi + 1].any():
            continue  # not isolated: a neighbor exists
        rows = target.any(axis=1)
        row_idx = np.where(rows)[0]
        if row_idx.size == 0:
            continue
        mask[row_idx[0]:row_idx[-1] + 1, lo:hi + 1] = 0.45
        added += 1

    intensity = aerial_image(mask, pixel_nm, system)
    printed = print_image(intensity)
    sraf_zone = (mask > 0) & (mask < 1) & ~target
    violation = bool((printed & sraf_zone).any())
    return SrafResult(mask=mask, assists_added=added,
                      assist_printed=violation)


def _vertical_edges(occupied: np.ndarray) -> list:
    """[(column, is_rising)] of the occupancy profile."""
    diff = np.diff(occupied.astype(np.int8))
    out = []
    for idx in np.nonzero(diff)[0]:
        out.append((idx + (1 if diff[idx] > 0 else 0), diff[idx] > 0))
    return out


def isolated_line_mask(width_nm: float, *, pixel_nm: float = 2.0,
                       field_nm: float = 800.0,
                       rows: int = 60) -> np.ndarray:
    """A single isolated vertical line centered in an empty field."""
    if width_nm <= 0 or field_nm <= width_nm:
        raise ValueError("bad line geometry")
    cols = int(field_nm / pixel_nm)
    wpx = max(1, int(round(width_nm / pixel_nm)))
    img = np.zeros((rows, cols), dtype=bool)
    mid = cols // 2
    img[:, mid - wpx // 2: mid - wpx // 2 + wpx] = True
    return img


def process_window(target: np.ndarray, pixel_nm: float, *,
                   mask: np.ndarray | None = None,
                   system: LithoSystem = IMMERSION_193,
                   doses=(0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15),
                   epe_spec_nm: float = 8.0) -> float:
    """Fraction of the dose ladder at which the target prints in spec.

    The standard exposure-latitude metric; SRAFs exist to widen it for
    isolated features.
    """
    from repro.litho.aerial import edge_placement_errors

    if mask is None:
        mask = target
    intensity = aerial_image(np.asarray(mask, dtype=float), pixel_nm,
                             system)
    passing = 0
    for dose in doses:
        printed = print_image(intensity, 0.5 / dose)
        epe = edge_placement_errors(
            np.asarray(target, dtype=bool), printed, pixel_nm)
        if epe.size and np.max(np.abs(epe)) <= epe_spec_nm:
            passing += 1
    return passing / len(doses)
