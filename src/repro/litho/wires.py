"""Wire-pattern generators for decomposition and printing experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WireSegment:
    """One routed wire on a track grid.

    ``track`` indexes parallel routing tracks (pitch apart); ``start``
    and ``end`` are positions along the track in track-pitch units.
    """

    track: int
    start: float
    end: float
    net: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("end must exceed start")

    @property
    def length(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "WireSegment", margin: float = 0.0) -> bool:
        """True if the segments' spans overlap (with margin)."""
        return self.start < other.end + margin and \
            other.start < self.end + margin


def random_track_wires(num_tracks: int, track_length: float, *,
                       density: float = 0.5, mean_length: float = 8.0,
                       seed: int = 0) -> list:
    """Random Manhattan wiring on a track grid.

    Each track is filled left-to-right with wire segments and gaps so
    the overall fill ratio approaches ``density`` — the metal-layer
    texture a router produces.
    """
    if not 0 < density < 1:
        raise ValueError("density must be in (0, 1)")
    rng = np.random.default_rng(seed)
    wires = []
    count = 0
    for t in range(num_tracks):
        pos = rng.uniform(0, mean_length / density * (1 - density))
        while pos < track_length:
            length = rng.exponential(mean_length) + 1.0
            end = min(pos + length, track_length)
            if end - pos >= 1.0:
                wires.append(WireSegment(t, pos, end, f"n{count}"))
                count += 1
            gap = rng.exponential(mean_length * (1 - density) / density)
            pos = end + max(gap, 1.0)
    return wires


def wires_from_routing(result, *, tracks_per_gcell: int = 4,
                       seed: int = 0) -> list:
    """Convert a global-routing result into track wire segments.

    Each horizontal grid edge's usage becomes that many parallel
    segments on the tracks of its gcell row — a simplified track
    assignment sufficient for conflict-graph studies.
    """
    rng = np.random.default_rng(seed)
    grid = result.grid
    wires = []
    count = 0
    for y in range(grid.ny):
        # Walk runs of used edges in this row.
        for t in range(tracks_per_gcell):
            x = 0
            while x < grid.nx - 1:
                if grid.h_usage[y, x] > t:
                    start = x
                    while x < grid.nx - 1 and grid.h_usage[y, x] > t:
                        x += 1
                    jitter = rng.uniform(0, 0.3)
                    wires.append(WireSegment(
                        y * tracks_per_gcell + t,
                        start + jitter, x + jitter + 0.5, f"r{count}"))
                    count += 1
                else:
                    x += 1
    return wires


def dense_line_mask(pitch_nm: float, *, pixel_nm: float = 2.0,
                    lines: int = 8, rows: int = 40,
                    duty: float = 0.5) -> np.ndarray:
    """A dense line/space grating as a binary mask image."""
    if pitch_nm <= 0 or not 0 < duty < 1:
        raise ValueError("bad grating parameters")
    ppx = max(2, int(round(pitch_nm / pixel_nm)))
    width = int(round(ppx * duty))
    img = np.zeros((rows, lines * ppx), dtype=bool)
    for line in range(lines):
        img[:, line * ppx: line * ppx + width] = True
    return img


def wires_to_mask(wires: list, pitch_nm: float, *,
                  pixel_nm: float = 2.0, width_fraction: float = 0.5,
                  track_unit_nm: float | None = None) -> np.ndarray:
    """Rasterize track wires into a binary mask image.

    Tracks run horizontally, ``pitch_nm`` apart; wire width is
    ``width_fraction`` of the pitch.  Used to print a decomposed mask
    (one color at a time) through the aerial model.
    """
    if not wires:
        return np.zeros((4, 4), dtype=bool)
    if track_unit_nm is None:
        track_unit_nm = pitch_nm
    max_track = max(w.track for w in wires)
    max_pos = max(w.end for w in wires)
    h = int((max_track + 2) * pitch_nm / pixel_nm)
    wpx = int(np.ceil(max_pos * track_unit_nm / pixel_nm)) + 4
    img = np.zeros((h, wpx), dtype=bool)
    half_w = max(1, int(pitch_nm * width_fraction / pixel_nm / 2))
    for w in wires:
        yc = int((w.track + 1) * pitch_nm / pixel_nm)
        x0 = int(w.start * track_unit_nm / pixel_nm)
        x1 = int(w.end * track_unit_nm / pixel_nm)
        img[max(0, yc - half_w): yc + half_w, x0:x1] = True
    return img
