"""ePlace-style analytic placement on :class:`PackedNetlist` arrays.

The vectorized successor to :func:`repro.place.global_place.global_place`:
the whole pipeline — net-model assembly, quadratic solves, density
spreading, legalization, and detailed refinement — runs on the packed
columnar arrays (int32 CSR connectivity) with numpy/scipy bulk
operations.  No rehydration to the object :class:`Netlist` happens on
the hot path; an object ``Netlist`` input is packed once (memoized on
the edit journal) and only its *identity* is kept to build the returned
:class:`~repro.place.placement.Placement`.

Pipeline phases (each recorded as a ``kernel_span``):

``assemble``
    Star/clique spring model built in bulk: nets are bucketed by pin
    count, cliques (p <= 10) emit their pair lists through precomputed
    combination index tables, bigger nets star around their actual
    driving gate, and the sparse Laplacian is assembled from one
    concatenated COO triple.  I/O pads anchor their nets exactly as the
    baseline placer does.
``solve``
    The two independent SPD systems are solved with Jacobi-
    preconditioned conjugate gradient.  Unlike the baseline's direct
    SuperLU factorization (superlinear in practice: 143 s at 12k
    gates), CG is O(nnz) per iteration and every re-solve inside the
    spreading loop warm-starts from the previous solution, so later
    solves converge in a handful of iterations.
``spread``
    A SimPL-flavoured electrostatic loop replaces the per-cell Python
    diffusion: cell area is splat bilinearly onto a 2^k x 2^k grid, the
    Poisson equation for the potential is solved with a mirrored
    ``numpy.fft.rfft2`` (even extension = Neumann walls, so cells are
    pushed off overfull regions, never wrapped), cells ride the
    negative gradient field in bulk steps, and the quadratic system is
    re-solved against growing pseudo-net anchors.  The loop terminates
    on density overflow.
``legalize``
    Vectorized Tetris/Abacus row legalization: cells are partitioned
    into rows along width quantiles of the y-order (legal by
    construction at any utilization the die was sized for) and packed
    with the abacus forward/backward passes expressed as *segmented*
    running max/min — two ``np.maximum.accumulate`` calls legalize
    every row at once.
``detailed``
    Array-based same-row adjacent swaps: per-net top-3/bottom-3 x
    extremes make the exact HPWL delta of removing up to two pins and
    adding their new positions an O(1) vectorized expression, so one
    sweep scores every candidate swap in bulk; improving,
    net-disjoint swaps are applied together.

For designs above ``cluster_above`` gates a multilevel scheme kicks
in: gates are coarsened along driver edges (union-find with a size
cap), the cluster netlist is placed with the same engine, and the flat
design warm-starts from its cluster's location — keeping the quadratic
systems and density grids small enough that the engine holds up at the
100k-1M gate corpus scale.

Everything is seeded and deterministic: the only randomness is one
``np.random.default_rng(seed)`` jitter that breaks symmetric ties, so
repeated runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.netlist.packed import PackedNetlist, csr_gather

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlist.cells import CellLibrary
    from repro.netlist.circuit import Netlist
    from repro.orchestrate.telemetry import TelemetrySink
    from repro.place.placement import Placement

FloatArray = Any   # npt.NDArray[np.float64] (numpy is untyped here)
IntArray = Any     # npt.NDArray[np.int64]

#: Nets with more members than this use the star model (matches the
#: baseline placer's threshold, so QoR comparisons are apples-to-apples).
STAR_THRESHOLD = 10

#: Tiny center pull that keeps the quadratic system SPD.
_ANCHOR = 1e-6

#: Fallback footprint (um^2) for cells the caller gave no area for —
#: only reachable when placing a bare PackedNetlist with no library.
_DEFAULT_AREA_UM2 = 1.0

_C2: dict[int, tuple[IntArray, IntArray]] = {}


def _pair_table(size: int) -> tuple[IntArray, IntArray]:
    """All index pairs (i < j) of a ``size``-element clique, cached."""
    if size not in _C2:
        i, j = np.triu_indices(size, k=1)
        _C2[size] = (i.astype(np.int64), j.astype(np.int64))
    return _C2[size]


# ----------------------------------------------------------------------
# The array-level placement problem.


@dataclass
class _Problem:
    """One level of the (possibly clustered) placement problem.

    ``net_off``/``members`` is the deduplicated net -> gate CSR; pads
    are per-net boundary anchors (NaN x for pad-free nets).
    """

    n: int
    net_off: IntArray
    members: IntArray
    areas: FloatArray
    weight: FloatArray          # per-net spring weight 1/(p-1) * user
    drv: IntArray               # per-net driving member, -1 if none
    pad_x: FloatArray           # NaN when the net has no pad
    pad_y: FloatArray


@dataclass
class PackedPlacement:
    """Placement of a :class:`PackedNetlist`, still in array form.

    The CSR-native analog of :class:`~repro.place.placement.Placement`:
    coordinates are parallel to ``packed.gate_names``.  ``row_of`` maps
    each gate to its legalized row (-1 before legalization).
    """

    packed: PackedNetlist
    die_w_um: float
    die_h_um: float
    row_height_um: float
    xs: FloatArray
    ys: FloatArray
    row_of: IntArray
    widths: FloatArray
    pad_positions: dict[str, tuple[float, float]] = field(
        default_factory=dict)

    def positions(self) -> dict[str, tuple[float, float]]:
        """gate name -> (x, y), the object-form interface."""
        xs = self.xs.tolist()
        ys = self.ys.tolist()
        return {name: (xs[i], ys[i])
                for i, name in enumerate(self.packed.gate_names)}

    def total_hpwl(self) -> float:
        """Vectorized total half-perimeter wirelength (pads included)."""
        off, members = _net_members(self.packed)
        pad_net, pad_x, pad_y = _boundary_pads(
            self.packed, self.die_w_um, self.die_h_um)
        return _hpwl_total(self.xs, self.ys, off, members,
                           pad_net, pad_x, pad_y)

    def validate(self) -> None:
        """Every gate inside the die (mirrors ``Placement.validate``)."""
        if np.any(self.xs < -1e-6) or np.any(self.ys < -1e-6) \
                or np.any(self.xs > self.die_w_um + 1e-6) \
                or np.any(self.ys > self.die_h_um + 1e-6):
            raise ValueError("gate outside the die")

    def to_placement(self, netlist: "Netlist") -> "Placement":
        """Bridge to the object form for downstream consumers."""
        from repro.place.placement import Placement
        return Placement(
            netlist, self.die_w_um, self.die_h_um,
            positions=self.positions(),
            pad_positions=dict(self.pad_positions),
            row_height_um=self.row_height_um)


# ----------------------------------------------------------------------
# Assembly: packed arrays -> net CSR, pads, Laplacian.


def _net_members(packed: PackedNetlist) -> tuple[IntArray, IntArray]:
    """Deduplicated net -> member-gate CSR from the packed pin arrays."""
    counts = np.diff(packed.pin_off.astype(np.int64))
    g = packed.num_gates
    pin_gate = np.concatenate((
        np.repeat(np.arange(g, dtype=np.int64), counts),
        np.arange(g, dtype=np.int64)))
    pin_net = np.concatenate((
        packed.pin_net.astype(np.int64),
        packed.gate_output.astype(np.int64)))
    order = np.lexsort((pin_gate, pin_net))
    pn, pg = pin_net[order], pin_gate[order]
    if pn.size:
        keep = np.concatenate((
            [True], (pn[1:] != pn[:-1]) | (pg[1:] != pg[:-1])))
        pn, pg = pn[keep], pg[keep]
    sizes = np.bincount(pn, minlength=packed.num_nets)
    off = np.concatenate((np.zeros(1, dtype=np.int64),
                          np.cumsum(sizes)))
    return off, pg


def _boundary_pads(packed: PackedNetlist, die_w: float, die_h: float
                   ) -> tuple[IntArray, FloatArray, FloatArray]:
    """Primary-I/O pad coordinates on the die boundary.

    Bit-compatible with the baseline placer's pad walk (same t/side
    formula, later I/O entries overwrite earlier ones for nets that are
    both PI and PO).
    """
    io = np.concatenate((packed.primary_inputs.astype(np.int64),
                         packed.primary_outputs.astype(np.int64)))
    k = np.arange(io.size, dtype=np.float64)
    t = k / max(io.size, 1)
    side = np.arange(io.size) % 4
    px = np.select(
        [side == 0, side == 1, side == 2, side == 3],
        [t * die_w, np.full(io.size, die_w), (1 - t) * die_w,
         np.zeros(io.size)])
    py = np.select(
        [side == 0, side == 1, side == 2, side == 3],
        [np.zeros(io.size), t * die_h, np.full(io.size, die_h),
         (1 - t) * die_h])
    pad_x = np.full(packed.num_nets, np.nan)
    pad_y = np.full(packed.num_nets, np.nan)
    # Duplicate net indices: keep the *last* occurrence, like the
    # baseline's dict assignment.
    for i in range(io.size):
        pad_x[io[i]] = px[i]
        pad_y[io[i]] = py[i]
    return io, pad_x, pad_y


def _problem_from_packed(
        packed: PackedNetlist, die_w: float, die_h: float,
        areas: FloatArray,
        net_weights: Mapping[str, float] | None) -> _Problem:
    """Build the array-level problem (net CSR, weights, drivers, pads)."""
    off, members = _net_members(packed)
    sizes = np.diff(off)
    _, pad_x, pad_y = _boundary_pads(packed, die_w, die_h)
    has_pad = ~np.isnan(pad_x)
    p = sizes + has_pad
    weight = np.zeros(packed.num_nets)
    ok = p >= 2
    weight[ok] = 1.0 / np.maximum(p[ok] - 1, 1)
    if net_weights:
        idx = {name: i for i, name in enumerate(packed.net_names)}
        for name, w in net_weights.items():
            i = idx.get(name)
            if i is not None:
                weight[i] *= w
    drv = np.full(packed.num_nets, -1, dtype=np.int64)
    if packed.num_gates:
        drv[packed.gate_output.astype(np.int64)] = \
            np.arange(packed.num_gates, dtype=np.int64)
    return _Problem(n=packed.num_gates, net_off=off, members=members,
                    areas=areas, weight=weight, drv=drv,
                    pad_x=pad_x, pad_y=pad_y)


def _spring_system(prob: _Problem, die_w: float, die_h: float
                   ) -> tuple[Any, FloatArray, FloatArray, FloatArray]:
    """The star/clique Laplacian and its pad/center right-hand sides.

    Returns ``(L, diag, bx, by)`` with ``L`` in CSR form.  Cliques are
    emitted in size buckets through cached pair tables; star nets
    anchor on their driving member (falling back to the first member
    for driverless nets, e.g. PI fanout).
    """
    from scipy import sparse

    sizes = np.diff(prob.net_off)
    has_pad = ~np.isnan(prob.pad_x)
    p = sizes + has_pad
    active = np.flatnonzero((p >= 2) & (prob.weight > 0))

    pair_a: list[IntArray] = []
    pair_b: list[IntArray] = []
    pair_w: list[FloatArray] = []

    star = active[sizes[active] > STAR_THRESHOLD]
    if star.size:
        centers = prob.drv[star]
        flat = csr_gather(prob.net_off[star], sizes[star])
        mem = prob.members[flat]
        rep = np.repeat(np.arange(star.size, dtype=np.int64),
                        sizes[star])
        # Driverless nets fall back to their first stored member.
        first = prob.members[prob.net_off[star]]
        centers = np.where(centers >= 0, centers, first)
        ctr = centers[rep]
        keep = mem != ctr
        pair_a.append(ctr[keep])
        pair_b.append(mem[keep])
        pair_w.append(np.repeat(prob.weight[star], sizes[star])[keep])

    small = active[(sizes[active] >= 2)
                   & (sizes[active] <= STAR_THRESHOLD)]
    for s in range(2, STAR_THRESHOLD + 1):
        bucket = small[sizes[small] == s]
        if not bucket.size:
            continue
        flat = csr_gather(prob.net_off[bucket],
                          np.full(bucket.size, s, dtype=np.int64))
        mem = prob.members[flat].reshape(-1, s)
        ti, tj = _pair_table(s)
        pair_a.append(mem[:, ti].ravel())
        pair_b.append(mem[:, tj].ravel())
        pair_w.append(np.repeat(prob.weight[bucket], ti.size))

    n = prob.n
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)
    if pair_a:
        a = np.concatenate(pair_a)
        b = np.concatenate(pair_b)
        w = np.concatenate(pair_w)
        np.add.at(diag, a, w)
        np.add.at(diag, b, w)
        rows = np.concatenate((a, b))
        cols = np.concatenate((b, a))
        vals = np.concatenate((-w, -w))
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0)

    padded = active[has_pad[active]]
    if padded.size:
        flat = csr_gather(prob.net_off[padded], sizes[padded])
        mem = prob.members[flat]
        w = np.repeat(prob.weight[padded], sizes[padded])
        np.add.at(diag, mem, w)
        np.add.at(bx, mem, w * np.repeat(prob.pad_x[padded],
                                         sizes[padded]))
        np.add.at(by, mem, w * np.repeat(prob.pad_y[padded],
                                         sizes[padded]))

    diag = diag + _ANCHOR
    bx = bx + _ANCHOR * (die_w / 2)
    by = by + _ANCHOR * (die_h / 2)
    lap = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    lap = lap + sparse.diags(diag, format="csr")
    return lap, diag, bx, by


# ----------------------------------------------------------------------
# Solve: Jacobi-preconditioned CG with warm starts.


def _cg_solve(lap: Any, diag: FloatArray, b: FloatArray,
              x0: FloatArray, rtol: float = 1e-7,
              maxiter: int = 500) -> FloatArray:
    """One warm-started CG solve of the SPD spring system."""
    from scipy import sparse
    from scipy.sparse.linalg import cg

    m = sparse.diags(1.0 / diag, format="csr")
    x, _info = cg(lap, b, x0=x0, rtol=rtol, atol=0.0,
                  maxiter=maxiter, M=m)
    return np.asarray(x, dtype=np.float64)


# ----------------------------------------------------------------------
# Spread: FFT electrostatic density field.


def _auto_bins(n: int) -> int:
    """Power-of-two grid size with ~4 cells per bin, in [8, 256].

    Coarser than one-cell bins on purpose: density must measure
    regional crowding, not per-cell granularity, or the overflow
    metric never converges on small designs.
    """
    target = max(np.sqrt(max(n, 1)) / 2.0, 1.0)
    bins = 1 << int(np.ceil(np.log2(target)))
    return int(np.clip(bins, 8, 256))


def _splat_density(xs: FloatArray, ys: FloatArray, areas: FloatArray,
                   bins: int, die_w: float, die_h: float) -> FloatArray:
    """Bilinear area splat onto a ``bins x bins`` grid (utilization)."""
    bw = die_w / bins
    bh = die_h / bins
    fx = np.clip(xs / bw - 0.5, 0.0, bins - 1.0)
    fy = np.clip(ys / bh - 0.5, 0.0, bins - 1.0)
    ix = np.minimum(fx.astype(np.int64), bins - 2) \
        if bins > 1 else np.zeros(xs.size, dtype=np.int64)
    iy = np.minimum(fy.astype(np.int64), bins - 2) \
        if bins > 1 else np.zeros(ys.size, dtype=np.int64)
    tx = fx - ix
    ty = fy - iy
    grid = np.zeros(bins * bins)
    base = iy * bins + ix
    np.add.at(grid, base, areas * (1 - tx) * (1 - ty))
    if bins > 1:
        np.add.at(grid, base + 1, areas * tx * (1 - ty))
        np.add.at(grid, base + bins, areas * (1 - tx) * ty)
        np.add.at(grid, base + bins + 1, areas * tx * ty)
    return grid.reshape(bins, bins) / (bw * bh)


def _poisson_field(density: FloatArray) -> tuple[FloatArray, FloatArray]:
    """Electrostatic field of the density charge via mirrored rfft2.

    The density is extended with even symmetry to double size before
    the FFT, which imposes Neumann (reflecting-wall) boundaries — the
    standard DCT trick, expressed with ``numpy.fft.rfft2``.  Returns
    the ``(Ex, Ey)`` grids of the negative potential gradient, each
    indexed ``[iy, ix]`` like the density grid.
    """
    m = density.shape[0]
    rho = density - density.mean()
    big = np.empty((2 * m, 2 * m))
    big[:m, :m] = rho
    big[:m, m:] = rho[:, ::-1]
    big[m:, :m] = rho[::-1, :]
    big[m:, m:] = rho[::-1, ::-1]
    spec = np.fft.rfft2(big)
    ky = np.fft.fftfreq(2 * m) * 2 * np.pi
    kx = np.fft.rfftfreq(2 * m) * 2 * np.pi
    k2 = ky[:, None] ** 2 + kx[None, :] ** 2
    k2[0, 0] = 1.0
    psi = np.fft.irfft2(spec / k2, s=(2 * m, 2 * m))[:m, :m]
    ey, ex = np.gradient(psi)   # gradient axis order is (rows=y, cols=x)
    return -ex, -ey


def _field_at(ex: FloatArray, ey: FloatArray, xs: FloatArray,
              ys: FloatArray, die_w: float, die_h: float
              ) -> tuple[FloatArray, FloatArray]:
    """Bilinear gather of the bin-centered field at cell positions."""
    bins = ex.shape[0]
    bw = die_w / bins
    bh = die_h / bins
    fx = np.clip(xs / bw - 0.5, 0.0, bins - 1.0)
    fy = np.clip(ys / bh - 0.5, 0.0, bins - 1.0)
    ix = np.minimum(fx.astype(np.int64), bins - 2) \
        if bins > 1 else np.zeros(xs.size, dtype=np.int64)
    iy = np.minimum(fy.astype(np.int64), bins - 2) \
        if bins > 1 else np.zeros(ys.size, dtype=np.int64)
    tx = fx - ix
    ty = fy - iy
    if bins == 1:
        return ex[iy, ix], ey[iy, ix]

    def lerp(g: FloatArray) -> FloatArray:
        return (g[iy, ix] * (1 - tx) * (1 - ty)
                + g[iy, ix + 1] * tx * (1 - ty)
                + g[iy + 1, ix] * (1 - tx) * ty
                + g[iy + 1, ix + 1] * tx * ty)

    return lerp(ex), lerp(ey)


def _overflow(density: FloatArray, areas_total: float,
              die_w: float, die_h: float,
              margin: float = 1.5) -> float:
    """Fraction of cell area sitting above ``margin`` x mean density.

    The 1.5x threshold matches the baseline placer's diffusion
    trigger, so "spread enough" means the same thing to both engines.
    """
    if areas_total <= 0:
        return 0.0
    bins = density.shape[0]
    bin_area = (die_w / bins) * (die_h / bins)
    cap = margin * areas_total / (die_w * die_h)
    over = np.maximum(density - cap, 0.0).sum() * bin_area
    return float(over / areas_total)


# ----------------------------------------------------------------------
# Legalize: segmented-scan Tetris/Abacus.


def _segmented_cummax(vals: FloatArray, seg: IntArray) -> FloatArray:
    """Running max within each (sorted, contiguous) segment."""
    if not vals.size:
        return vals
    span = float(np.max(np.abs(vals))) + 1.0
    lifted = vals + seg * (2.0 * span)
    out = np.maximum.accumulate(lifted) - seg * (2.0 * span)
    return out


def _legalize(xs: FloatArray, ys: FloatArray, widths: FloatArray,
              die_w: float, die_h: float, row_h: float
              ) -> tuple[FloatArray, FloatArray, IntArray, IntArray]:
    """Vectorized row legalization.

    Cells are ordered by y (x as tiebreak) and cut into rows along
    cumulative-width quantiles, which bounds every row's occupancy by
    construction; within each row the abacus forward/backward passes
    run as segmented cumulative max/min over the whole design at once.
    Returns ``(xs, ys, row_of, rank)`` with ``rank`` the within-row
    left-to-right order (used by the detailed phase).
    """
    n = xs.size
    rows = max(1, int(die_h / row_h))
    order = np.lexsort((xs, ys))
    w = widths[order]
    cum = np.cumsum(w)
    total = float(cum[-1]) if n else 0.0
    # Keep per-row occupancy at total/rows, which the die sizing keeps
    # under the row width; degenerate overfull dies still get the best
    # even split.
    centers = cum - w / 2
    row_sorted = np.clip((centers / max(total, 1e-12) * rows)
                         .astype(np.int64), 0, rows - 1)

    # Within each row, order by desired x.
    order2 = np.lexsort((xs[order], row_sorted))
    gate = order[order2]
    row_sorted = row_sorted[order2]
    w = widths[gate]
    desired = xs[gate]

    # Forward (abacus) pass as a segmented running max:
    #   left_i = max(desired_i - w_i/2, left_{i-1} + w_{i-1})
    # in the L_i = left_i - prefw_i frame it is a plain cummax.
    prefw = np.cumsum(w) - w
    row_first = np.concatenate((
        [True], row_sorted[1:] != row_sorted[:-1]))
    seg_starts = np.flatnonzero(row_first)
    seg_lens = np.diff(np.append(seg_starts, n))
    relw = prefw - np.repeat(prefw[seg_starts], seg_lens)
    d = np.maximum(desired - w / 2 - relw, 0.0)   # 0 = die left wall
    left = _segmented_cummax(d, row_sorted) + relw

    # Backward pass: pull rows that overflowed the right wall back in.
    # In the V_i = left_i + sufw_i + w_i frame (suffix width including
    # self) the chain left_{i-1} <= left_i - w_{i-1} is a running min
    # from the right, again one segmented scan.
    row_total = np.repeat(np.add.reduceat(w, seg_starts), seg_lens)
    sufw = row_total - relw - w       # width packed to my right
    cand = np.minimum(left, die_w - sufw - w) + sufw + w
    seg_rev = (rows - 1 - row_sorted)[::-1]
    v = -_segmented_cummax(-cand[::-1], seg_rev)
    left = np.maximum(v[::-1] - sufw - w, 0.0)
    # A final forward scan restores the no-overlap invariant in
    # (pathological) rows wider than the die.
    left = _segmented_cummax(left - relw, row_sorted) + relw

    out_x = np.empty(n)
    out_y = np.empty(n)
    row_of = np.empty(n, dtype=np.int64)
    rank = np.empty(n, dtype=np.int64)
    out_x[gate] = left + w / 2
    out_y[gate] = (row_sorted + 0.5) * row_h
    row_of[gate] = row_sorted
    rank[gate] = np.arange(n) - np.repeat(seg_starts, seg_lens)
    return out_x, out_y, row_of, rank


# ----------------------------------------------------------------------
# HPWL and per-net extremes.


def _net_extremes(vals: FloatArray, off: IntArray, members: IntArray,
                  pad_vals: FloatArray, kth: int = 3
                  ) -> tuple[FloatArray, FloatArray]:
    """Per-net top-k and bottom-k member coordinates (+/-inf padded).

    Pads enter as one extra virtual pin per net.  Returns
    ``(top, bot)`` of shape (nets, kth): ``top[:, 0]`` is the max.
    """
    nets = off.size - 1
    sizes = np.diff(off)
    x = vals[members]
    net_of = np.repeat(np.arange(nets, dtype=np.int64), sizes)
    has_pad = ~np.isnan(pad_vals)
    if np.any(has_pad):
        pn = np.flatnonzero(has_pad)
        x = np.concatenate((x, pad_vals[pn]))
        net_of = np.concatenate((net_of, pn))
    order = np.lexsort((x, net_of))
    x = x[order]
    net_of = net_of[order]
    counts = np.bincount(net_of, minlength=nets)
    starts = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(counts)))[:-1]
    ends = starts + counts
    top = np.full((nets, kth), -np.inf)
    bot = np.full((nets, kth), np.inf)
    for k in range(kth):
        sel = counts > k
        top[sel, k] = x[ends[sel] - 1 - k]
        bot[sel, k] = x[starts[sel] + k]
    return top, bot


def _hpwl_total(xs: FloatArray, ys: FloatArray, off: IntArray,
                members: IntArray, pad_net: IntArray,
                pad_x: FloatArray, pad_y: FloatArray) -> float:
    """Total HPWL over all nets with >= 2 pins (pads included)."""
    sizes = np.diff(off)
    has_pad = ~np.isnan(pad_x)
    p = sizes + has_pad
    topx, botx = _net_extremes(xs, off, members, pad_x, kth=1)
    topy, boty = _net_extremes(ys, off, members, pad_y, kth=1)
    sel = p >= 2
    return float(((topx[sel, 0] - botx[sel, 0])
                  + (topy[sel, 0] - boty[sel, 0])).sum())


# ----------------------------------------------------------------------
# Detailed: bulk-scored same-row adjacent swaps.


def _remove_from_top3(top: FloatArray, r1: FloatArray, r2: FloatArray
                      ) -> FloatArray:
    """Max of each net's pins after removing up to two known values.

    ``top`` holds the three largest values (with multiplicity, -inf
    padded); removals not present in the top-3 cannot affect the max.
    Sentinel removals must be -inf.
    """
    a, b, c = top[:, 0].copy(), top[:, 1].copy(), top[:, 2].copy()
    for r in (r1, r2):
        hit_a = r == a
        hit_b = ~hit_a & (r == b)
        # Shift the triple down past the removed slot.
        na = np.where(hit_a, b, a)
        nb = np.where(hit_a, c, np.where(hit_b, c, b))
        nc = np.where(hit_a | hit_b, -np.inf, c)
        a, b, c = na, nb, nc
    return a


def _detailed_sweep(xs: FloatArray, widths: FloatArray,
                    row_of: IntArray, rank: IntArray,
                    gate_net_off: IntArray, gate_nets: IntArray,
                    net_off: IntArray, members: IntArray,
                    pad_x: FloatArray, parity: int) -> float:
    """One bulk-scored sweep of adjacent same-row swaps.

    Scores every disjoint (parity-selected) adjacent pair at once via
    per-net top/bottom-3 x extremes, then applies the improving swaps
    greedily under net-disjointness so the predicted total is exact.
    Mutates ``xs`` (y never changes for same-row swaps) and returns
    the achieved HPWL improvement.
    """
    n = xs.size
    order = np.lexsort((rank, row_of))
    same_row = row_of[order][:-1] == row_of[order][1:] if n > 1 else \
        np.zeros(0, dtype=bool)
    first = order[:-1][same_row]
    second = order[1:][same_row]
    sel = (rank[first] % 2) == parity
    a, b = first[sel], second[sel]
    if not a.size:
        return 0.0

    wa, wb = widths[a], widths[b]
    la = xs[a] - wa / 2
    new_xa = la + wb + wa / 2
    new_xb = la + wb / 2

    top, bot = _net_extremes(xs, net_off, members, pad_x, kth=3)

    # (candidate, net, old, new) incidence for both moved cells.
    ca = np.repeat(np.arange(a.size, dtype=np.int64),
                   np.diff(gate_net_off)[a])
    na = gate_nets[csr_gather(gate_net_off[a],
                              np.diff(gate_net_off)[a])]
    cb = np.repeat(np.arange(b.size, dtype=np.int64),
                   np.diff(gate_net_off)[b])
    nb = gate_nets[csr_gather(gate_net_off[b],
                              np.diff(gate_net_off)[b])]
    cand = np.concatenate((ca, cb))
    net = np.concatenate((na, nb))
    old = np.concatenate((xs[a][ca], xs[b][cb]))
    new = np.concatenate((new_xa[ca], new_xb[cb]))

    # Merge duplicate (cand, net) rows into two-move records.
    o = np.lexsort((net, cand))
    cand, net, old, new = cand[o], net[o], old[o], new[o]
    dup = np.concatenate((
        (cand[1:] == cand[:-1]) & (net[1:] == net[:-1]), [False]))
    lead = np.concatenate(([True], ~dup[:-1]))
    r1, n1 = old[lead], new[lead]
    r2 = np.full(r1.size, np.nan)
    n2 = np.full(r1.size, np.nan)
    tail = np.flatnonzero(dup)          # row merged into the lead row
    lead_idx = np.cumsum(lead) - 1
    r2[lead_idx[tail]] = old[tail + 1]
    n2[lead_idx[tail]] = new[tail + 1]
    cand, net = cand[lead], net[lead]

    t = top[net]
    bt = bot[net]
    r2max = np.where(np.isnan(r2), -np.inf, r2)
    n2max = np.where(np.isnan(n2), -np.inf, n2)
    nmax = np.maximum(_remove_from_top3(t, r1, r2max),
                      np.maximum(n1, n2max))
    r2min = np.where(np.isnan(r2), np.inf, r2)
    n2min = np.where(np.isnan(n2), np.inf, n2)
    nmin = np.minimum(-_remove_from_top3(-bt, -r1, -r2min),
                      np.minimum(n1, n2min))
    span_ok = np.isfinite(t[:, 0]) | np.isfinite(n1)
    old_span = np.where(span_ok, t[:, 0] - bt[:, 0], 0.0)
    new_span = np.where(np.isfinite(nmax), nmax - nmin, 0.0)
    delta = new_span - old_span

    total = np.zeros(a.size)
    np.add.at(total, cand, delta)

    improving = np.flatnonzero(total < -1e-9)
    if not improving.size:
        return 0.0
    improving = improving[np.argsort(total[improving], kind="stable")]
    claimed = np.zeros(net_off.size - 1, dtype=bool)
    gained = 0.0
    for c in improving.tolist():
        cn = np.concatenate((
            gate_nets[gate_net_off[a[c]]:gate_net_off[a[c] + 1]],
            gate_nets[gate_net_off[b[c]]:gate_net_off[b[c] + 1]]))
        if claimed[cn].any():
            continue
        claimed[cn] = True
        xs[a[c]] = new_xa[c]
        xs[b[c]] = new_xb[c]
        rank[a[c]], rank[b[c]] = rank[b[c]], rank[a[c]]
        gained -= float(total[c])
    return gained


def _gate_nets(prob: _Problem) -> tuple[IntArray, IntArray]:
    """Deduplicated gate -> net CSR (transpose of the member CSR)."""
    sizes = np.diff(prob.net_off)
    net_of = np.repeat(np.arange(prob.net_off.size - 1,
                                 dtype=np.int64), sizes)
    order = np.lexsort((net_of, prob.members))
    g = prob.members[order]
    nn = net_of[order]
    counts = np.bincount(g, minlength=prob.n)
    off = np.concatenate((np.zeros(1, dtype=np.int64),
                          np.cumsum(counts)))
    return off, nn


# ----------------------------------------------------------------------
# Multilevel clustering.


def _coarsen(prob: _Problem, max_cluster: int = 4
             ) -> tuple[IntArray, _Problem]:
    """Cluster gates along driver edges (vectorized hook + compress).

    Driver edges of small nets are oriented toward the lower gate
    index, so keeping at most one (minimum) parent per gate yields a
    forest with ``parent[i] <= i``; pointer jumping resolves roots in
    ``O(log depth)`` whole-array passes, and a sort-based rank pass
    enforces the ``max_cluster`` size cap — no per-edge Python loop,
    so clustering stays cheap at the >50k-gate scale that triggers it.
    Returns ``(cluster_of, coarse_problem)``.
    """
    n = prob.n
    # Propose: for each small net, its driver merges with its members.
    sizes = np.diff(prob.net_off)
    small = np.flatnonzero((sizes >= 2) & (sizes <= 4)
                           & (prob.drv >= 0))
    flat = csr_gather(prob.net_off[small], sizes[small])
    mem = prob.members[flat]
    drv = np.repeat(prob.drv[small], sizes[small])
    keep_e = mem != drv
    mem, drv = mem[keep_e], drv[keep_e]
    parent = np.arange(n, dtype=np.int64)
    np.minimum.at(parent, np.maximum(mem, drv), np.minimum(mem, drv))
    while True:                     # pointer jumping to the roots
        hopped = parent[parent]
        if np.array_equal(hopped, parent):
            break
        parent = hopped
    roots = parent
    # Cap cluster sizes: keep the root plus the first
    # ``max_cluster - 1`` members by gate index, detach the rest.
    order = np.argsort(roots, kind="stable")
    sorted_roots = roots[order]
    starts = np.concatenate(
        ([True], sorted_roots[1:] != sorted_roots[:-1]))
    group_start = np.maximum.accumulate(
        np.where(starts, np.arange(n), 0))
    detach = order[np.arange(n) - group_start >= max_cluster]
    roots = roots.copy()
    roots[detach] = detach
    uniq, cluster_of = np.unique(roots, return_inverse=True)
    nc = uniq.size

    areas = np.zeros(nc)
    np.add.at(areas, cluster_of, prob.areas)
    cmem = cluster_of[prob.members]
    net_of = np.repeat(np.arange(prob.net_off.size - 1,
                                 dtype=np.int64),
                       np.diff(prob.net_off))
    order = np.lexsort((cmem, net_of))
    nn, cm = net_of[order], cmem[order]
    if nn.size:
        keep = np.concatenate((
            [True], (nn[1:] != nn[:-1]) | (cm[1:] != cm[:-1])))
        nn, cm = nn[keep], cm[keep]
    csizes = np.bincount(nn, minlength=prob.net_off.size - 1)
    coff = np.concatenate((np.zeros(1, dtype=np.int64),
                           np.cumsum(csizes)))
    cdrv = np.where(prob.drv >= 0, cluster_of[
        np.clip(prob.drv, 0, n - 1)], -1)
    coarse = _Problem(n=nc, net_off=coff, members=cm, areas=areas,
                      weight=prob.weight, drv=cdrv,
                      pad_x=prob.pad_x, pad_y=prob.pad_y)
    return cluster_of, coarse


# ----------------------------------------------------------------------
# The global solve/spread loop.


def _global_positions(prob: _Problem, die_w: float, die_h: float,
                      rng: Any, *, target_overflow: float,
                      max_iterations: int, bins: int,
                      spread_blend: float, cluster_above: int,
                      sink: Any, span: Any, depth: int = 0
                      ) -> tuple[FloatArray, FloatArray]:
    """Solve + spread at this level (recursing through coarser levels)."""
    n = prob.n
    warm_x: FloatArray | None = None
    warm_y: FloatArray | None = None
    if n > cluster_above and depth < 8:
        cluster_of, coarse = _coarsen(prob)
        if coarse.n < n:      # coarsening made progress
            cxs, cys = _global_positions(
                coarse, die_w, die_h, rng,
                target_overflow=target_overflow,
                max_iterations=max_iterations, bins=bins,
                spread_blend=spread_blend,
                cluster_above=cluster_above, sink=sink, span=span,
                depth=depth + 1)
            jit = rng.normal(0.0, 0.005 * die_w, size=(2, n))
            warm_x = np.clip(cxs[cluster_of] + jit[0], 0, die_w)
            warm_y = np.clip(cys[cluster_of] + jit[1], 0, die_h)

    with span(sink, "place_assemble"):
        lap, diag, bx, by = _spring_system(prob, die_w, die_h)

    with span(sink, "place_solve"):
        x0 = warm_x if warm_x is not None else \
            np.full(n, die_w / 2) + rng.normal(0, 0.01, n)
        y0 = warm_y if warm_y is not None else \
            np.full(n, die_h / 2) + rng.normal(0, 0.01, n)
        xs = np.clip(_cg_solve(lap, diag, bx, x0), 0, die_w)
        ys = np.clip(_cg_solve(lap, diag, by, y0), 0, die_h)
        xs = np.clip(xs + rng.normal(0, 0.01, n), 0, die_w)
        ys = np.clip(ys + rng.normal(0, 0.01, n), 0, die_h)

    with span(sink, "place_spread"):
        # Order-preserving rank stretch fills the die cheaply ...
        if n > 1 and spread_blend > 0:
            rank_x = np.empty(n)
            rank_x[np.argsort(xs, kind="stable")] = \
                np.arange(n) / (n - 1)
            rank_y = np.empty(n)
            rank_y[np.argsort(ys, kind="stable")] = \
                np.arange(n) / (n - 1)
            xs = (1 - spread_blend) * xs + spread_blend * rank_x * die_w
            ys = (1 - spread_blend) * ys + spread_blend * rank_y * die_h
        # ... then the electrostatic loop irons out local overflow.
        m = bins if bins else _auto_bins(n)
        areas_total = float(prob.areas.sum())
        bin_step = max(die_w, die_h) / m
        alpha = float(np.mean(diag)) * 1e-3
        from scipy import sparse as _sp
        eye = _sp.identity(n, format="csr")
        prev_overflow = np.inf
        for _ in range(max_iterations):
            density = _splat_density(xs, ys, prob.areas, m,
                                     die_w, die_h)
            overflow = _overflow(density, areas_total, die_w, die_h)
            if overflow <= target_overflow \
                    or overflow > 0.99 * prev_overflow:
                break           # converged, or spreading has stalled
            prev_overflow = overflow
            ex, ey = _poisson_field(density)
            gx, gy = _field_at(ex, ey, xs, ys, die_w, die_h)
            norm = float(np.max(np.hypot(gx, gy)))
            if norm <= 0:
                break
            step = 0.9 * bin_step / norm
            xs = np.clip(xs + step * gx, 0, die_w)
            ys = np.clip(ys + step * gy, 0, die_h)
            # Warm-started anchored re-solve pulls connectivity back.
            lap_a = lap + alpha * eye
            diag_a = diag + alpha
            xs = np.clip(_cg_solve(lap_a, diag_a, bx + alpha * xs,
                                   xs, rtol=1e-5, maxiter=100),
                         0, die_w)
            ys = np.clip(_cg_solve(lap_a, diag_a, by + alpha * ys,
                                   ys, rtol=1e-5, maxiter=100),
                         0, die_h)
            alpha *= 1.8
    return xs, ys


# ----------------------------------------------------------------------
# Entry point.


def analytic_place(design: "Netlist | PackedNetlist", *,
                   library: "CellLibrary | None" = None,
                   die_w_um: float | None = None,
                   die_h_um: float | None = None,
                   utilization: float = 0.7,
                   net_weights: Mapping[str, float] | None = None,
                   seed: int = 0, legalize: bool = True,
                   detailed_passes: int = 2,
                   target_overflow: float = 0.12,
                   max_iterations: int = 24,
                   bins: int = 0,
                   spread_blend: float = 0.6,
                   cluster_above: int = 50_000,
                   telemetry: "TelemetrySink | None" = None
                   ) -> "Placement | PackedPlacement":
    """Place a design with the vectorized analytic engine.

    Accepts either the object :class:`Netlist` (returns a legalized
    :class:`~repro.place.placement.Placement`, like the baseline
    placer) or the columnar :class:`PackedNetlist` (returns a
    :class:`PackedPlacement`; no object netlist is ever built).  When
    placing a bare packed design, ``library`` may supply cell areas
    and the row height — without it every cell falls back to a unit
    footprint.

    ``telemetry`` collects one ``kernel_span`` per phase
    (``place_assemble`` / ``place_solve`` / ``place_spread`` /
    ``place_legalize`` / ``place_detailed``).  Seeded and
    deterministic: equal inputs and ``seed`` give bit-identical
    placements.
    """
    from repro.orchestrate.telemetry import TelemetrySink, kernel_span

    netlist: "Netlist | None" = None
    if isinstance(design, PackedNetlist):
        packed = design
    else:
        netlist = design
        packed = design.to_packed()
        if library is None:
            library = design.library
    n = packed.num_gates
    if n == 0:
        raise ValueError("cannot place an empty netlist")

    cell_area = np.empty(len(packed.cell_names))
    for ci, cname in enumerate(packed.cell_names):
        cell = None
        if library is not None:
            try:
                cell = library[cname]
            except KeyError:
                cell = None
        cell_area[ci] = (cell.area_um2 if cell is not None
                         else _DEFAULT_AREA_UM2)
    areas = cell_area[packed.gate_cell.astype(np.int64)]

    row_h = 1.0
    node = getattr(library, "node", None)
    if node is not None:
        row_h = node.cell_height_nm * 1e-3
    if die_w_um is None or die_h_um is None:
        if not 0 < utilization <= 1:
            raise ValueError("utilization in (0, 1]")
        die_area = float(areas.sum()) / utilization
        die_h_um = die_area ** 0.5
        die_w_um = die_area / die_h_um
    die_w = float(die_w_um)
    die_h = float(die_h_um)

    sink = telemetry if telemetry is not None else TelemetrySink()
    rng = np.random.default_rng(seed)
    prob = _problem_from_packed(packed, die_w, die_h, areas,
                                net_weights)
    xs, ys = _global_positions(
        prob, die_w, die_h, rng,
        target_overflow=target_overflow,
        max_iterations=max_iterations, bins=bins,
        spread_blend=spread_blend, cluster_above=cluster_above,
        sink=sink, span=kernel_span)

    widths = np.maximum(areas / row_h, 0.05)
    row_of = np.full(n, -1, dtype=np.int64)
    if legalize:
        with kernel_span(sink, "place_legalize"):
            xs, ys, row_of, rank = _legalize(
                xs, ys, widths, die_w, die_h, row_h)
        if detailed_passes > 0:
            with kernel_span(sink, "place_detailed"):
                goff, gnets = _gate_nets(prob)
                for _ in range(detailed_passes):
                    gained = 0.0
                    for parity in (0, 1):
                        gained += _detailed_sweep(
                            xs, widths, row_of, rank, goff, gnets,
                            prob.net_off, prob.members, prob.pad_x,
                            parity)
                    if gained <= 1e-9:
                        break

    pad_positions: dict[str, tuple[float, float]] = {}
    pad_net, pad_x, pad_y = _boundary_pads(packed, die_w, die_h)
    for i in np.unique(pad_net).tolist():
        pad_positions[packed.net_names[i]] = (float(pad_x[i]),
                                              float(pad_y[i]))

    result = PackedPlacement(
        packed=packed, die_w_um=die_w, die_h_um=die_h,
        row_height_um=row_h, xs=xs, ys=ys, row_of=row_of,
        widths=widths, pad_positions=pad_positions)
    if netlist is not None:
        return result.to_placement(netlist)
    return result
