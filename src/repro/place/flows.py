"""Flat vs hierarchical implementation flows (experiment E2).

``place_flat`` flattens the whole design and places it as one netlist.
``place_hierarchical`` implements block by block — each block confined
to its floorplan region, boundary buffers isolating every port — and
then assembles the result.  The flat flow's advantage is exactly the
"lesser amount of buffering" Domic cites, measurable here as cell
count, area, and power deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.hierarchy import Design, flatten, implement_by_block
from repro.place.analytic import analytic_place
from repro.place.buffering import estimate_buffers
from repro.place.detailed import detailed_place
from repro.place.global_place import global_place
from repro.place.placement import Placement
from repro.power.analysis import power_report
from repro.timing import TimingAnalyzer, WireModel


@dataclass
class PnrResult:
    """QoR of one implementation flow."""

    placement: Placement
    style: str
    instances: int
    area_um2: float
    hpwl_um: float
    buffers: int
    delay_ps: float
    power_uw: float

    def summary(self) -> str:
        """One-line QoR string."""
        return (
            f"{self.style}: {self.instances} cells, "
            f"{self.area_um2:.0f} um2, HPWL {self.hpwl_um:.0f} um, "
            f"{self.buffers} buffers, {self.delay_ps:.0f} ps, "
            f"{self.power_uw:.1f} uW"
        )


def _qor(placement: Placement, style: str, freq_ghz: float) -> PnrResult:
    nl = placement.netlist
    node = nl.library.node
    lengths = placement.net_lengths()
    wm = WireModel.for_node(node, lengths)
    report = TimingAnalyzer(nl, wm).analyze()
    buffers = sum(
        1 for g in nl.gates.values() if g.cell.name.startswith("BUF"))
    power = power_report(nl, freq_ghz=freq_ghz, patterns=64)
    return PnrResult(
        placement=placement,
        style=style,
        instances=nl.num_instances(),
        area_um2=nl.area_um2(),
        hpwl_um=placement.total_hpwl(),
        buffers=buffers,
        delay_ps=report.critical_delay_ps,
        power_uw=power.total_uw,
    )


def _global(nl, engine: str, *, utilization: float, seed: int):
    """One global pass with the selected engine (no detailed moves)."""
    if engine == "analytic":
        return analytic_place(nl, utilization=utilization, seed=seed,
                              detailed_passes=0)
    if engine != "quadratic":
        raise ValueError(f"unknown engine {engine!r}")
    return global_place(nl, utilization=utilization, seed=seed)


def place_flat(design: Design, *, utilization: float = 0.7,
               freq_ghz: float = 0.5, seed: int = 0,
               detailed_passes: int = 1,
               engine: str = "analytic") -> PnrResult:
    """Flatten and implement as a single netlist."""
    nl = flatten(design)
    placement = _global(nl, engine, utilization=utilization, seed=seed)
    detailed_place(placement, passes=detailed_passes, seed=seed)
    return _qor(placement, "flat", freq_ghz)


def place_hierarchical(design: Design, *, utilization: float = 0.7,
                       freq_ghz: float = 0.5, seed: int = 0,
                       detailed_passes: int = 1,
                       engine: str = "analytic") -> PnrResult:
    """Block-by-block implementation with boundary buffers.

    The assembled netlist (with isolation buffers) is placed with each
    block's cells biased to a private region, mirroring how hierarchical
    flows lose the cross-block optimization freedom.
    """
    nl = implement_by_block(design)
    placement = _global(nl, engine, utilization=utilization, seed=seed)
    # Partition the die into block regions and pull each block's cells
    # toward its region center (region constraint approximation).
    blocks = sorted({g.split(".")[0] for g in nl.gates if "." in g})
    if blocks:
        cols = max(1, int(len(blocks) ** 0.5))
        for k, block in enumerate(blocks):
            cx = ((k % cols) + 0.5) / cols * placement.die_w_um
            cy = ((k // cols) + 0.5) / max(
                1, (len(blocks) + cols - 1) // cols) * placement.die_h_um
            for gname in list(placement.positions):
                if gname.startswith(block + "."):
                    x, y = placement.positions[gname]
                    placement.positions[gname] = (
                        0.4 * x + 0.6 * cx, 0.4 * y + 0.6 * cy)
        placement.legalize_to_rows()
    detailed_place(placement, passes=detailed_passes, seed=seed)
    return _qor(placement, "hierarchical", freq_ghz)


def flat_vs_hierarchical(design: Design, **kwargs) -> dict:
    """Run both flows; returns {"flat": ..., "hierarchical": ...}."""
    return {
        "flat": place_flat(design, **kwargs),
        "hierarchical": place_hierarchical(design, **kwargs),
    }
