"""Buffer insertion on long placed nets.

The mechanism behind E2: "the flat implementation of a hierarchical
design can save silicon real estate, and power consumption — due to the
lesser amount of buffering" (Domic).  Wire delay is quadratic in
length; splitting a net with buffers makes it linear, at an area and
power cost.  Hierarchical flows add boundary buffers on top, so their
total buffer count is strictly higher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.place.placement import Placement


@dataclass
class BufferReport:
    """Outcome of a buffering pass."""

    buffers_added: int
    buffer_area_um2: float
    nets_buffered: int
    total_net_length_um: float


def optimal_buffer_segment_um(node) -> float:
    """Length at which a buffered repeater beats the bare wire.

    The classic criterion: segment length L* = sqrt(2 * Rbuf * Cbuf /
    (Rwire' * Cwire')); expressed with the node's per-micron wire
    parasitics and a representative buffer.
    """
    rw = node.rwire_ohm_per_um
    cw = node.cwire_ff_per_um * 1e-15
    # Representative X2 buffer: drive resistance and input cap derived
    # the same way the library builder does.
    fo4 = node.fo4_delay_ps() * 1e-12
    cin = node.cgate_ff_per_um * (3.0 * node.gate_length_nm * 1e-3) * 1e-15
    rb = 0.75 * fo4 / (4.0 * cin) / 2.0
    return math.sqrt(2.0 * rb * (2 * cin) / (rw * cw))


def estimate_buffers(placement: Placement, *,
                     segment_um: float | None = None) -> BufferReport:
    """Count the buffers a placed design needs, without inserting them.

    Every net longer than one optimal segment needs
    ``floor(length / segment)`` repeaters.
    """
    node = placement.netlist.library.node
    if segment_um is None:
        segment_um = optimal_buffer_segment_um(node)
    if segment_um <= 0:
        raise ValueError("segment length must be positive")
    buf = placement.netlist.library.buffer("X2")
    lengths = placement.net_lengths()
    buffers = 0
    nets = 0
    total = 0.0
    for net, length in lengths.items():
        total += length
        need = int(length // segment_um)
        if need > 0:
            buffers += need
            nets += 1
    return BufferReport(
        buffers_added=buffers,
        buffer_area_um2=buffers * buf.area_um2,
        nets_buffered=nets,
        total_net_length_um=total,
    )


def buffer_long_nets(placement: Placement, *,
                     segment_um: float | None = None) -> BufferReport:
    """Physically insert repeaters on long nets.

    Each long net's loads are re-driven through a chain of buffers
    placed along the net's bounding box diagonal; the placement and
    netlist are both updated.
    """
    node = placement.netlist.library.node
    if segment_um is None:
        segment_um = optimal_buffer_segment_um(node)
    nl = placement.netlist
    buf = nl.library.buffer("X2")
    pins = placement.net_pins()
    inserted = 0
    nets_buffered = 0
    total_length = 0.0
    for net in list(pins):
        pts = pins[net]
        if len(pts) < 2:
            continue
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        length = (max(xs) - min(xs)) + (max(ys) - min(ys))
        total_length += length
        need = int(length // segment_um)
        if need <= 0:
            continue
        loads = nl.loads_of(net)
        if not loads:
            continue
        nets_buffered += 1
        inserted += need
        prev = net
        x0, y0 = min(xs), min(ys)
        dx = (max(xs) - min(xs)) / (need + 1)
        dy = (max(ys) - min(ys)) / (need + 1)
        for k in range(need):
            gate = nl.add_gate(buf, [prev])
            placement.positions[gate.name] = (
                min(x0 + (k + 1) * dx, placement.die_w_um),
                min(y0 + (k + 1) * dy, placement.die_h_um),
            )
            prev = gate.output
        # The farthest loads hang off the last repeater.
        loads_sorted = sorted(
            loads, key=lambda lp: abs(placement.positions.get(
                lp[0].name, (x0, y0))[0] - x0))
        for g, pin in loads_sorted[len(loads_sorted) // 2:]:
            if g.pins[pin] == net:
                nl.rewire_pin(g.name, pin, prev)
    return BufferReport(
        buffers_added=inserted,
        buffer_area_um2=inserted * buf.area_um2,
        nets_buffered=nets_buffered,
        total_net_length_um=total_length,
    )
