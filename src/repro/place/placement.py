"""The placement data model and its metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netlist.circuit import Netlist


@dataclass
class Placement:
    """Cell locations on a die for one netlist.

    ``positions`` maps gate name -> (x, y) in microns (cell centers).
    Primary I/O pins sit on the die boundary in ``pad_positions``.
    """

    netlist: Netlist
    die_w_um: float
    die_h_um: float
    positions: dict = field(default_factory=dict)
    pad_positions: dict = field(default_factory=dict)
    row_height_um: float = 1.0

    # ------------------------------------------------------------------

    def net_pins(self) -> dict:
        """net -> [(x, y)] of all pins on the net (driver + loads)."""
        pins: dict[str, list] = {}
        for g in self.netlist.gates.values():
            if g.name in self.positions:
                pins.setdefault(g.output, []).append(self.positions[g.name])
                for net in g.pins.values():
                    pins.setdefault(net, []).append(
                        self.positions[g.name])
        for net, xy in self.pad_positions.items():
            pins.setdefault(net, []).append(xy)
        return pins

    def net_hpwl(self, net: str, pins: dict | None = None) -> float:
        """Half-perimeter wirelength of one net."""
        pts = (pins or self.net_pins()).get(net, [])
        if len(pts) < 2:
            return 0.0
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def total_hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        pins = self.net_pins()
        return sum(self.net_hpwl(net, pins) for net in pins)

    def net_lengths(self) -> dict:
        """net -> HPWL, the input to placement-aware timing/power."""
        pins = self.net_pins()
        return {net: self.net_hpwl(net, pins) for net in pins}

    def density_map(self, bins: int = 16) -> np.ndarray:
        """(bins, bins) utilization map of placed cell area."""
        grid = np.zeros((bins, bins))
        bx = self.die_w_um / bins
        by = self.die_h_um / bins
        for name, (x, y) in self.positions.items():
            gate = self.netlist.gates[name]
            ix = int(np.clip(x / bx, 0, bins - 1))
            iy = int(np.clip(y / by, 0, bins - 1))
            grid[iy, ix] += gate.cell.area_um2
        return grid / (bx * by)

    def congestion_map(self, bins: int = 16) -> np.ndarray:
        """(bins, bins) routing-demand estimate.

        Each net spreads one unit of demand uniformly over its bounding
        box (the RUDY estimator), scaled by the net's HPWL density.
        """
        grid = np.zeros((bins, bins))
        bx = self.die_w_um / bins
        by = self.die_h_um / bins
        for net, pts in self.net_pins().items():
            if len(pts) < 2:
                continue
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            w = max(max(xs) - min(xs), bx * 0.5)
            h = max(max(ys) - min(ys), by * 0.5)
            demand = (w + h) / (w * h)
            x0 = int(np.clip(min(xs) / bx, 0, bins - 1))
            x1 = int(np.clip(max(xs) / bx, x0, bins - 1))
            y0 = int(np.clip(min(ys) / by, 0, bins - 1))
            y1 = int(np.clip(max(ys) / by, y0, bins - 1))
            grid[y0:y1 + 1, x0:x1 + 1] += demand
        return grid

    def peak_congestion(self, bins: int = 16) -> float:
        """Max of the congestion map — the overflow risk proxy."""
        return float(self.congestion_map(bins).max())

    def legalize_to_rows(self) -> None:
        """Snap cells into non-overlapping rows, preserving positions.

        Cells are assigned to the nearest row with free width; within a
        row, a forward pass resolves overlaps left-to-right around the
        desired x coordinates and a backward pass pulls any overflow
        back inside the die (an abacus-style legalizer).
        """
        rows = max(1, int(self.die_h_um / self.row_height_um))
        fill = [0.0] * rows
        assigned: list[list] = [[] for _ in range(rows)]
        order = sorted(self.positions.items(), key=lambda kv: kv[1][0])
        for name, (x, y) in order:
            gate = self.netlist.gates[name]
            width = max(gate.cell.area_um2 / self.row_height_um, 0.05)
            target = int(np.clip(y / self.row_height_um, 0, rows - 1))
            best_row, best_cost = None, float("inf")
            for r in range(rows):
                if fill[r] + width > self.die_w_um:
                    continue
                cost = abs(r - target) * self.row_height_um
                if cost < best_cost:
                    best_row, best_cost = r, cost
            if best_row is None:  # every row full: least-filled row
                best_row = int(np.argmin(fill))
            fill[best_row] += width
            assigned[best_row].append((name, x, width))
        for r, cells in enumerate(assigned):
            if not cells:
                continue
            cells.sort(key=lambda c: c[1])
            # Forward pass: push right to resolve overlaps.
            placed = []
            cursor = 0.0
            for name, x, width in cells:
                left = max(cursor, x - width / 2)
                placed.append([name, left, width])
                cursor = left + width
            # Backward pass: pull back inside the die.
            limit = self.die_w_um
            for entry in reversed(placed):
                entry[1] = min(entry[1], limit - entry[2])
                limit = entry[1]
            y_row = (r + 0.5) * self.row_height_um
            for name, left, width in placed:
                self.positions[name] = (max(left, 0.0) + width / 2, y_row)

    def validate(self) -> None:
        """Every gate placed, inside the die."""
        for name in self.netlist.gates:
            if name not in self.positions:
                raise ValueError(f"gate {name!r} not placed")
            x, y = self.positions[name]
            if not (-1e-6 <= x <= self.die_w_um + 1e-6 and
                    -1e-6 <= y <= self.die_h_um + 1e-6):
                raise ValueError(f"gate {name!r} outside the die")


def half_perimeter_wirelength(placement: Placement) -> float:
    """Module-level alias of :meth:`Placement.total_hpwl`."""
    return placement.total_hpwl()


def die_for_netlist(netlist: Netlist, *, utilization: float = 0.7,
                    aspect: float = 1.0) -> tuple:
    """Die (w, h) in um for a netlist at a target utilization."""
    if not 0 < utilization <= 1:
        raise ValueError("utilization in (0, 1]")
    area = netlist.area_um2() / utilization
    h = (area / aspect) ** 0.5
    return (aspect * h, h)
