"""Detailed placement: greedy pairwise-swap wirelength refinement."""

from __future__ import annotations

import numpy as np

from repro.place.placement import Placement


def detailed_place(placement: Placement, *, passes: int = 2,
                   window: int = 8, seed: int = 0) -> float:
    """Swap nearby same-row cells when HPWL improves.

    Returns the total HPWL improvement.  Operates in place.  The pass
    count is a quality/runtime knob for the self-learning engine (E8).
    """
    rng = np.random.default_rng(seed)
    nl = placement.netlist

    # net -> gate members / fixed pad pins, computed once.
    members: dict[str, list] = {}
    nets_of: dict[str, list] = {}
    for g in nl.gates.values():
        touched = {g.output, *g.pins.values()}
        nets_of[g.name] = sorted(touched)
        for net in touched:
            members.setdefault(net, []).append(g.name)
    fixed: dict[str, list] = {}
    for net, xy in placement.pad_positions.items():
        fixed.setdefault(net, []).append(xy)

    def net_hpwl(net: str) -> float:
        pts = [placement.positions[m] for m in members.get(net, ())
               if m in placement.positions]
        pts += fixed.get(net, [])
        if len(pts) < 2:
            return 0.0
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def hpwl_of(nets) -> float:
        return sum(net_hpwl(net) for net in nets)

    improved_total = 0.0
    names = sorted(placement.positions)
    for _ in range(passes):
        order = list(names)
        rng.shuffle(order)
        rows: dict[float, list] = {}
        for name in order:
            rows.setdefault(round(placement.positions[name][1], 3),
                            []).append(name)
        for row_cells in rows.values():
            row_cells.sort(key=lambda n: placement.positions[n][0])
            for i in range(len(row_cells) - 1):
                j = min(i + 1 + int(rng.integers(0, window)),
                        len(row_cells) - 1)
                a, b = row_cells[i], row_cells[j]
                if a == b:
                    continue
                nets = sorted(set(nets_of[a]) | set(nets_of[b]))
                before = hpwl_of(nets)
                pa, pb = placement.positions[a], placement.positions[b]
                placement.positions[a], placement.positions[b] = pb, pa
                after = hpwl_of(nets)
                if after < before - 1e-12:
                    improved_total += before - after
                else:
                    placement.positions[a], placement.positions[b] = pa, pb
    return improved_total
