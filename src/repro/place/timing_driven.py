"""Timing-driven placement: slack-based net weighting.

The classic two-pass recipe: place once, run STA with the placement's
wire lengths, weight each net by how critical it is, and place again.
Critical nets contract; the critical path shortens at a small total-
wirelength cost.
"""

from __future__ import annotations

from repro.netlist.circuit import Netlist
from repro.place.global_place import global_place
from repro.place.placement import Placement
from repro.timing import IncrementalTimingAnalyzer, WireModel


def slack_weights(netlist: Netlist, placement: Placement, *,
                  clock_period_ps: float = 1000.0,
                  max_weight: float = 6.0) -> dict:
    """net -> placement weight derived from timing slack.

    Nets at the worst slack get ``max_weight``; nets at or above the
    median slack keep weight 1; linear in between.
    """
    if max_weight < 1.0:
        raise ValueError("max_weight must be >= 1")
    lengths = placement.net_lengths()
    wm = WireModel.for_node(netlist.library.node, lengths)
    with IncrementalTimingAnalyzer(netlist, wm, clock_period_ps) as sta:
        slacks = sta.analyze().slacks()
    if not slacks:
        return {}
    values = sorted(slacks.values())
    worst = values[0]
    median = values[len(values) // 2]
    span = max(median - worst, 1e-9)
    weights = {}
    for net, slack in slacks.items():
        t = max(0.0, min(1.0, (median - slack) / span))
        weights[net] = 1.0 + (max_weight - 1.0) * t
    return weights


def timing_driven_place(netlist: Netlist, *,
                        clock_period_ps: float = 1000.0,
                        utilization: float = 0.4,
                        max_weight: float = 6.0,
                        seed: int = 0,
                        engine: str = "analytic") -> Placement:
    """Two-pass timing-driven placement.

    Returns the second-pass placement (the first exists only to
    measure slack).  ``engine`` selects the placer: ``analytic`` (the
    vectorized CSR-native engine) or ``quadratic`` (the baseline).
    """
    if engine == "analytic":
        from repro.place.analytic import analytic_place

        def _place(weights=None):
            return analytic_place(netlist, utilization=utilization,
                                  seed=seed, net_weights=weights)
    elif engine == "quadratic":
        def _place(weights=None):
            return global_place(netlist, utilization=utilization,
                                seed=seed, net_weights=weights)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    first = _place()
    weights = slack_weights(netlist, first,
                            clock_period_ps=clock_period_ps,
                            max_weight=max_weight)
    return _place(weights)


def critical_path_length_um(netlist: Netlist,
                            placement: Placement, *,
                            clock_period_ps: float = 1000.0) -> float:
    """Total routed length (HPWL) of the nets on the critical path."""
    lengths = placement.net_lengths()
    wm = WireModel.for_node(netlist.library.node, lengths)
    with IncrementalTimingAnalyzer(netlist, wm, clock_period_ps) as sta:
        report = sta.analyze()
    total = 0.0
    for gname in report.critical_path:
        gate = netlist.gates.get(gname)
        if gate is not None:
            total += lengths.get(gate.output, 0.0)
    return total
