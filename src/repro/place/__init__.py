"""Placement: quadratic global placement, legalization, detailed moves.

Supports the panel's implementation-side experiments: flat vs
hierarchical flows and their buffering overhead (E2), P&R throughput
scaling (E7), hot-spot-aware spreading (E9), and layout-aware scan
reordering (E10).
"""

from repro.place.placement import Placement, half_perimeter_wirelength
from repro.place.analytic import PackedPlacement, analytic_place
from repro.place.global_place import global_place, star_pairs
from repro.place.detailed import detailed_place
from repro.place.buffering import buffer_long_nets, estimate_buffers
from repro.place.flows import (
    PnrResult,
    place_flat,
    place_hierarchical,
)
from repro.place.timing_driven import (
    slack_weights,
    timing_driven_place,
)

__all__ = [
    "Placement",
    "PackedPlacement",
    "half_perimeter_wirelength",
    "analytic_place",
    "global_place",
    "star_pairs",
    "detailed_place",
    "buffer_long_nets",
    "estimate_buffers",
    "PnrResult",
    "place_flat",
    "place_hierarchical",
    "slack_weights",
    "timing_driven_place",
]
