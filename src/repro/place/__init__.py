"""Placement: quadratic global placement, legalization, detailed moves.

Supports the panel's implementation-side experiments: flat vs
hierarchical flows and their buffering overhead (E2), P&R throughput
scaling (E7), hot-spot-aware spreading (E9), and layout-aware scan
reordering (E10).
"""

from repro.place.placement import Placement, half_perimeter_wirelength
from repro.place.global_place import global_place
from repro.place.detailed import detailed_place
from repro.place.buffering import buffer_long_nets, estimate_buffers
from repro.place.flows import (
    PnrResult,
    place_flat,
    place_hierarchical,
)
from repro.place.timing_driven import (
    slack_weights,
    timing_driven_place,
)

__all__ = [
    "Placement",
    "half_perimeter_wirelength",
    "global_place",
    "detailed_place",
    "buffer_long_nets",
    "estimate_buffers",
    "PnrResult",
    "place_flat",
    "place_hierarchical",
    "slack_weights",
    "timing_driven_place",
]
