"""Quadratic global placement with density spreading.

The classic analytic recipe: model each multi-pin net as a clique of
springs (weighted 1/(p-1)), solve the two independent linear systems
for x and y with I/O pads as anchors, then interleave spreading passes
that diffuse cells out of overfull bins, and finish with row
legalization.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.netlist.circuit import Netlist
from repro.place.placement import Placement, die_for_netlist


def star_pairs(members: list, driver: int | None) -> list:
    """Spring pairs of a star-modeled net, hubbed on its driver.

    Big nets (fanout above the clique threshold) are modeled as a star
    around the gate that actually drives the net — not the first
    member in sort order, which would hub high-fanout nets on an
    arbitrary sink and let the true driver drift away from its fanout.
    PI-driven nets have no gate driver and fall back to the first
    member.
    """
    center = driver if driver in members else members[0]
    return [(center, b) for b in members if b != center]


def global_place(netlist: Netlist, *, die_w_um: float | None = None,
                 die_h_um: float | None = None, utilization: float = 0.7,
                 spreading_passes: int = 3, bins: int = 16,
                 spread_blend: float = 0.6,
                 net_weights: dict | None = None,
                 seed: int = 0, legalize: bool = True,
                 library=None) -> Placement:
    """Place a netlist analytically.

    Returns a legalized :class:`Placement`.  ``spreading_passes``
    controls the quality/runtime trade (the knob the self-learning
    engine of E8 tunes).

    Also accepts the columnar
    :class:`~repro.netlist.packed.PackedNetlist` interchange form, in
    which case ``library`` must supply the cells to rehydrate with.
    """
    from repro.netlist.packed import PackedNetlist

    if isinstance(netlist, PackedNetlist):
        if library is None:
            raise TypeError(
                "global_place(PackedNetlist) requires library=")
        netlist = netlist.to_netlist(library)
    if die_w_um is None or die_h_um is None:
        die_w_um, die_h_um = die_for_netlist(
            netlist, utilization=utilization)
    gates = list(netlist.gates.values())
    n = len(gates)
    if n == 0:
        raise ValueError("cannot place an empty netlist")
    index = {g.name: i for i, g in enumerate(gates)}

    # Pads: distribute primary I/O around the boundary.
    pads = {}
    io_nets = list(netlist.primary_inputs) + list(netlist.primary_outputs)
    for k, net in enumerate(io_nets):
        t = k / max(len(io_nets), 1)
        side = k % 4
        if side == 0:
            pads[net] = (t * die_w_um, 0.0)
        elif side == 1:
            pads[net] = (die_w_um, t * die_h_um)
        elif side == 2:
            pads[net] = ((1 - t) * die_w_um, die_h_um)
        else:
            pads[net] = (0.0, (1 - t) * die_h_um)

    # Build the connectivity: net -> [cell indices], pad anchor or None.
    nets: dict[str, list] = {}
    driver_of: dict[str, int] = {}
    for g in gates:
        nets.setdefault(g.output, []).append(index[g.name])
        driver_of.setdefault(g.output, index[g.name])
        for net in g.pins.values():
            nets.setdefault(net, []).append(index[g.name])

    rows, cols, vals = [], [], []
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)
    anchor = 1e-6  # tiny pull to the center keeps the system SPD
    cx, cy = die_w_um / 2, die_h_um / 2
    for net, members in nets.items():
        members = sorted(set(members))
        pad = pads.get(net)
        p = len(members) + (1 if pad is not None else 0)
        if p < 2:
            continue
        w = 1.0 / (p - 1)
        if net_weights is not None:
            w *= net_weights.get(net, 1.0)
        if len(members) > 10:
            # Star model around the driver keeps big nets O(p).
            pairs = star_pairs(members, driver_of.get(net))
        else:
            pairs = [(a, b) for i, a in enumerate(members)
                     for b in members[i + 1:]]
        for a, b in pairs:
            rows.append(a)
            cols.append(b)
            vals.append(-w)
            rows.append(b)
            cols.append(a)
            vals.append(-w)
            diag[a] += w
            diag[b] += w
        if pad is not None:
            for a in members:
                diag[a] += w
                bx[a] += w * pad[0]
                by[a] += w * pad[1]
    diag += anchor
    bx += anchor * cx
    by += anchor * cy
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(diag)
    lap = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
    xs = spsolve(lap, bx)
    ys = spsolve(lap, by)

    rng = np.random.default_rng(seed)
    xs = np.clip(xs + rng.normal(0, 0.01, n), 0, die_w_um)
    ys = np.clip(ys + rng.normal(0, 0.01, n), 0, die_h_um)

    # Rank-based spreading: the pure quadratic solution clusters cells
    # near the centroid; blending with the order-preserving uniform
    # stretch fills the die while keeping relative positions.
    if n > 1 and spread_blend > 0:
        rank_x = np.empty(n)
        rank_x[np.argsort(xs)] = np.arange(n) / (n - 1)
        rank_y = np.empty(n)
        rank_y[np.argsort(ys)] = np.arange(n) / (n - 1)
        xs = (1 - spread_blend) * xs + spread_blend * rank_x * die_w_um
        ys = (1 - spread_blend) * ys + spread_blend * rank_y * die_h_um

    placement = Placement(
        netlist, die_w_um, die_h_um,
        positions={g.name: (float(xs[i]), float(ys[i]))
                   for g, i in zip(gates, range(n))},
        pad_positions=pads,
        row_height_um=netlist.library.node.cell_height_nm * 1e-3,
    )
    for _ in range(spreading_passes):
        _spread(placement, bins)
    if legalize:
        placement.legalize_to_rows()
    return placement


def _spread(placement: Placement, bins: int) -> None:
    """One diffusion pass: push cells from overfull bins outward.

    Cells in bins above average utilization are nudged toward the
    neighboring bin with the lowest utilization, proportionally to the
    overflow.
    """
    density = placement.density_map(bins)
    avg = density.mean() + 1e-12
    bx = placement.die_w_um / bins
    by = placement.die_h_um / bins
    moves: dict[str, tuple] = {}
    for name, (x, y) in placement.positions.items():
        ix = int(np.clip(x / bx, 0, bins - 1))
        iy = int(np.clip(y / by, 0, bins - 1))
        if density[iy, ix] <= 1.5 * avg:
            continue
        best = None
        for dy, dx in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            ny, nx = iy + dy, ix + dx
            if 0 <= ny < bins and 0 <= nx < bins:
                if best is None or density[ny, nx] < density[best]:
                    best = (ny, nx)
        if best is None:
            continue
        overflow = (density[iy, ix] - avg) / density[iy, ix]
        ny, nx = best
        tx = (nx + 0.5) * bx
        ty = (ny + 0.5) * by
        moves[name] = (
            x + overflow * 0.5 * (tx - x),
            y + overflow * 0.5 * (ty - y),
        )
    placement.positions.update(moves)
