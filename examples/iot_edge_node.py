#!/usr/bin/env python3
"""An IoT edge node: Macii's smart system plus Sawicki's economics.

Co-designs a sensing node (sensor + ADC + MCU + radio + PMU + energy
store) against a one-year-battery spec, compares the methodology
against the separate-tools baseline, then prices the silicon on
established vs advanced nodes with the retargeted technique catalogue.

Run:  python examples/iot_edge_node.py
"""

from repro.mfg import design_cost, die_cost
from repro.netlist import build_library, registered_cloud
from repro.power import technique_ladder
from repro.smartsys import (
    SystemSpec,
    codesign_flow,
    plan_package,
    separate_tools_flow,
    simulate_energy,
)
from repro.tech import get_node


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Methodology: separate tools vs holistic co-design (E6).
    # ------------------------------------------------------------------
    spec = SystemSpec(min_battery_hours=24 * 365,
                      max_footprint_mm2=120.0,
                      max_unit_cost_usd=8.0)
    separate = separate_tools_flow(spec)
    joint = codesign_flow(spec)
    print("Smart-system design methodology (one-year battery spec):")
    print(" ", separate.summary())
    print(" ", joint.summary())

    chosen = joint.components
    print("\nCo-designed bill of materials:")
    for comp in chosen:
        print(f"  {comp.kind.value:<10} {comp.name:<12} "
              f"[{comp.tech}]  ${comp.cost_usd:.2f}")
    package = plan_package(chosen)
    print(f"  package: {package.summary()}")
    energy = simulate_energy(chosen, duty_cycle=spec.duty_cycle)
    print(f"  energy:  {energy.summary()}")

    # ------------------------------------------------------------------
    # 2. Retargeted low-power techniques on the 180 nm MCU die (E13).
    # ------------------------------------------------------------------
    lib180 = build_library(get_node("180nm"), vt_flavors=("rvt", "hvt"))
    mcu_logic = registered_cloud(8, 32, 300, lib180, seed=23)
    ladder = technique_ladder(mcu_logic, freq_ghz=0.05,
                              required_ghz=0.02, idle_fraction=0.9)
    print("\nAdvanced-node power techniques retargeted to 180 nm:")
    for name, uw in ladder.totals():
        print(f"  {name:<14} {uw:9.2f} uW")
    print(f"  total reduction: {ladder.reduction_factor():.2f}x")

    # ------------------------------------------------------------------
    # 3. Node economics: why IoT stays on established nodes (E11/E13).
    # ------------------------------------------------------------------
    transistors = 2e6
    volume = 500_000
    print(f"\nProgram economics ({transistors / 1e6:.0f}M transistors, "
          f"{volume / 1000:.0f}k units):")
    for name in ("180nm", "65nm", "28nm"):
        node = get_node(name)
        area = max(node.area_for_transistors(transistors), 1.0)
        unit = die_cost(node, area, volume=volume)
        nre = design_cost(node, transistors / 1e6)
        program = nre + unit.total_usd * volume
        print(f"  {name:>6}: die {area:6.2f} mm2, "
              f"${unit.total_usd:.3f}/die, NRE ${nre / 1e6:5.1f}M, "
              f"program ${program / 1e6:5.1f}M")


if __name__ == "__main__":
    main()
