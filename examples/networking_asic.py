#!/usr/bin/env python3
"""A networking-ASIC slice: Rossi's position statement as a flow.

Builds a crossbar switch (the archetypal networking fabric), implements
it, then exercises the three pain points Rossi names:

* hot-spot removal at >5x switching activity, fully automatic
  (decap insertion + activity spreading + grid upsizing);
* layout-aware scan-chain reordering vs the front-end order;
* low-pin-count test compression economics.

Run:  python examples/networking_asic.py
"""

import numpy as np

from repro.dft import (
    chain_wirelength,
    insert_scan,
    reorder_chain,
    test_cost_model,
)
from repro.dft.scan import ScanChain
from repro.netlist import build_library, crossbar_switch, registered_cloud
from repro.place import global_place
from repro.power import PowerGrid, insert_decaps
from repro.power.grid import power_density_map, spread_hotspots
from repro.route import route_placement
from repro.tech import get_node


def main() -> None:
    library = build_library(get_node("28nm"))

    # ------------------------------------------------------------------
    # 1. The fabric: a 4x8 crossbar, placed and routed.
    # ------------------------------------------------------------------
    xbar = crossbar_switch(4, 8, library)
    placement = global_place(xbar, seed=0, utilization=0.35)
    routing = route_placement(placement, gcell_um=2.0)
    print("Crossbar fabric:")
    print(f"  {xbar.num_instances()} cells, "
          f"HPWL {placement.total_hpwl():.0f} um")
    print(f"  routing: {routing.summary()}")

    # ------------------------------------------------------------------
    # 2. Power: the 5.5x-activity core and the automatic retrofit.
    # ------------------------------------------------------------------
    hot = [(5, 5), (5, 6), (6, 5), (6, 6)]
    pmap = power_density_map(12, 12, 4.2e6, hotspot_tiles=hot,
                             hotspot_multiplier=5.5, seed=0)
    grid = PowerGrid(12, 12, vdd=0.9)
    grid.set_current_from_power(pmap)
    before = grid.solve()
    plan = insert_decaps(grid, budget_ff=400_000, step_ff=5_000)
    moves = spread_hotspots(grid, iterations=100)
    after = grid.solve()
    print("\nHot-spot retrofit at 5.5x switching activity:")
    print(f"  violations {before.violation_count} -> "
          f"{after.violation_count}")
    print(f"  worst IR drop {before.worst_drop_mv:.1f} -> "
          f"{after.worst_drop_mv:.1f} mV")
    print(f"  actions: {plan.count()} decaps "
          f"({plan.total_cap_ff / 1000:.0f} pF), {moves} spread moves")

    # ------------------------------------------------------------------
    # 3. DFT: layout-aware scan vs the front-end order.
    # ------------------------------------------------------------------
    core = registered_cloud(8, 48, 300, library, seed=17)
    core_placement = global_place(core, seed=0)
    flops = [g.name for g in core.sequential_gates()]
    wl_front = chain_wirelength(
        ScanChain("front", flops, "si", "so"), core_placement)
    order = reorder_chain(flops, core_placement)
    wl_layout = chain_wirelength(
        ScanChain("layout", order, "si", "so"), core_placement)
    insert_scan(core, order=order)
    core.validate()
    print("\nScan stitching (48 flops):")
    print(f"  front-end order: {wl_front:.0f} um of scan routing")
    print(f"  layout-aware:    {wl_layout:.0f} um "
          f"({100 * (1 - wl_layout / wl_front):.0f}% saved)")

    # ------------------------------------------------------------------
    # 4. Test economics: compression to low pin count.
    # ------------------------------------------------------------------
    print("\nTest-cost ladder (30k flops, 1.5k patterns):")
    for pins, chains in ((64, 32), (16, 64), (4, 128)):
        cost = test_cost_model(30_000, 1_500, scan_pins=pins,
                               internal_chains=chains)
        print(f"  {pins:>2} pins: ${cost['total_cost_usd']:.4f}/die "
              f"({cost['compression_ratio']:.0f}x compression, "
              f"{cost['test_seconds'] * 1000:.1f} ms on tester)")


if __name__ == "__main__":
    main()
