#!/usr/bin/env python3
"""Looking backwards and forwards: the panel's narrative, quantified.

Backwards: the abstract's decade claims derived from the models
(integration capacity, power taming, 193i endurance).  Forwards: the
design-start forecast, the two-path IoT/infrastructure projection, and
the death-spiral economics that motivate "design efficiency".

Run:  python examples/retrospective_roadmap.py
"""

from repro.core import decade_report
from repro.market import DesignStartModel, two_path_forecast
from repro.mfg import death_spiral_index
from repro.tech import NODES, get_node
from repro.tech.patterning import patterning_for_pitch


def main() -> None:
    # ------------------------------------------------------------------
    # Backwards: the abstract as a results table.
    # ------------------------------------------------------------------
    print("== Looking backwards: the abstract, measured ==\n")
    report = decade_report()
    print(report.to_markdown())
    print(f"\nAll abstract claims hold: {report.all_hold()}")

    # The litho regime ladder the decade climbed.
    print("\nPatterning ladder (metal-1):")
    for name in ("90nm", "28nm", "20nm", "14nm", "10nm", "7nm", "5nm"):
        node = get_node(name)
        regime = patterning_for_pitch(node.metal1_pitch_nm)
        euv = patterning_for_pitch(node.metal1_pitch_nm, allow_euv=True)
        print(f"  {name:>5}: pitch {node.metal1_pitch_nm:5.0f} nm -> "
              f"{regime.value:<8} ({node.litho.mask_multiplier} masks); "
              f"with EUV: {euv.value}")

    # ------------------------------------------------------------------
    # Forwards: markets and economics.
    # ------------------------------------------------------------------
    print("\n== Looking forwards ==\n")
    model = DesignStartModel()
    print("Design-start forecast (established share / 180nm share):")
    for year, established, s180 in model.forecast(10)[::2]:
        print(f"  2015+{year:<2}: {established * 100:5.1f}% / "
              f"{s180 * 100:5.1f}%")

    fc = two_path_forecast(10)
    print("\nTwo-path silicon demand (300mm wafers):")
    for k in (0, 5, 10):
        print(f"  {fc.years[k]}: IoT {fc.iot_wafers_300mm[k]:9.0f}, "
              f"infrastructure {fc.infra_wafers_300mm[k]:7.1f}")

    print("\nDeath-spiral index (NRE / lifetime margin; >1 = trapped):")
    for name in ("28nm", "10nm", "7nm"):
        node = get_node(name)
        brute = death_spiral_index(node, 20.0, unit_volume=3_000_000,
                                   unit_margin_usd=4.0)
        efficient = death_spiral_index(node, 20.0,
                                       unit_volume=3_000_000,
                                       unit_margin_usd=4.0,
                                       design_efficiency=0.3)
        print(f"  {name:>5}: brute force {brute:5.2f}, with design "
              f"efficiency {efficient:5.2f}")
    print("\n'Design efficiency is indeed the only possible, "
          "technological and financial solution' (Rossi)")


if __name__ == "__main__":
    main()
