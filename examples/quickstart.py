#!/usr/bin/env python3
"""Quickstart: implement a small design end to end.

Builds an 8-bit carry-lookahead adder at 28 nm, runs it through the
advanced flow (synthesis already done by the generator, so place ->
route -> signoff), and prints the QoR — then re-runs the logic through
the era synthesis ladder to show the decade-of-EDA effect.

Run:  python examples/quickstart.py
"""

from repro.core import FlowOptions
from repro.netlist import build_library, carry_lookahead_adder, random_aig
from repro.orchestrate import run
from repro.synthesis.flow import decade_comparison
from repro.tech import get_node


def main() -> None:
    node = get_node("28nm")
    library = build_library(node, vt_flavors=("lvt", "rvt", "hvt"))
    print(f"Technology: {node.describe()}")
    print(f"Library: {len(library)} cells\n")

    # 1. A real arithmetic block through the full implementation flow.
    adder = carry_lookahead_adder(8, library)
    result = run(adder, library, FlowOptions.advanced())
    print("8-bit CLA implementation:")
    print(" ", result.summary())
    for stage, seconds in result.stage_runtimes.items():
        print(f"    {stage:<10} {seconds * 1000:7.1f} ms")

    # 2. The same random logic through the 1996/2006/2016 synthesis
    #    flows: the panel's decade of improvement.
    print("\nEra ladder on a 350-AND logic cone:")
    results = decade_comparison(
        lambda: random_aig(12, 350, 10, seed=1), library,
        clock_period_ps=2000.0)
    for era, qor in results.items():
        print(" ", qor.summary())
    gain = 1 - results["2016"].area_um2 / results["2006"].area_um2
    print(f"\n2006 -> 2016 area improvement: {gain * 100:.1f}% "
          f"(the panel quotes ~30%)")


if __name__ == "__main__":
    main()
