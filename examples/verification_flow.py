#!/usr/bin/env python3
"""The verification side of the panel: "correctly implemented and
consistently verified throughout the design flow" (Domic).

Four checks on one design:

* formal equivalence (BDD and SAT engines agree) between the optimized
  mapped netlist and a reference implementation;
* injected-bug detection with a concrete counterexample;
* multi-corner signoff across process and temperature;
* logic BIST coverage and golden signature.

Run:  python examples/verification_flow.py
"""

import numpy as np

from repro.core.signoff import signoff, signoff_frequency_ghz
from repro.dft.bist import run_bist
from repro.netlist import build_library, random_aig
from repro.synthesis import map_aig, trivial_map
from repro.synthesis.bdd import check_equivalence
from repro.synthesis.rewrite import optimize_aig
from repro.synthesis.sat import sat_check_equivalence
from repro.tech import get_node


def main() -> None:
    library = build_library(get_node("28nm"),
                            vt_flavors=("lvt", "rvt", "hvt"))
    aig = random_aig(10, 250, 8, seed=42)

    # ------------------------------------------------------------------
    # 1. Formal equivalence after aggressive optimization.
    # ------------------------------------------------------------------
    reference = trivial_map(aig, library)
    optimized = map_aig(optimize_aig(aig.copy(), "high"), library)
    bdd = check_equivalence(optimized, reference)
    sat = sat_check_equivalence(optimized, reference)
    print("Formal equivalence (optimized vs reference):")
    print(f"  BDD engine: {'EQUIVALENT' if bdd['equivalent'] else 'DIFF'}")
    print(f"  SAT engine: {'EQUIVALENT' if sat['equivalent'] else 'DIFF'}")
    print(f"  cells {reference.num_instances()} -> "
          f"{optimized.num_instances()} through the optimizer")

    # ------------------------------------------------------------------
    # 2. Bug injection: both engines must find a counterexample.
    # ------------------------------------------------------------------
    buggy = trivial_map(aig, library)
    for gate in buggy.combinational_gates():
        if gate.cell.name.startswith("AND2"):
            gate.cell = library["NAND2_X1_rvt"]
            break
    verdict = check_equivalence(optimized, buggy)
    cex = verdict["counterexample"]
    print("\nInjected bug (one AND2 -> NAND2):")
    print(f"  equivalence verdict: "
          f"{'EQUIVALENT (!!)' if verdict['equivalent'] else 'caught'}")
    vec = np.array([[cex.get(p, False)
                     for p in optimized.primary_inputs]], dtype=bool)
    diff = optimized.simulate(vec) != buggy.simulate(vec)
    print(f"  counterexample distinguishes designs: {bool(diff.any())}")

    # ------------------------------------------------------------------
    # 3. Multi-corner signoff.
    # ------------------------------------------------------------------
    fmax = signoff_frequency_ghz(optimized)
    report = signoff(optimized, clock_period_ps=1000.0 / fmax * 1.05)
    print(f"\nSignoff at {fmax * 0.95:.2f} GHz "
          f"(5% guardband under corner fmax {fmax:.2f} GHz):")
    for row in report.to_rows():
        print("  " + row)
    print(f"  overall: {'CLEAN' if report.clean else 'VIOLATED'}")

    # ------------------------------------------------------------------
    # 4. Logic BIST.
    # ------------------------------------------------------------------
    bist = run_bist(optimized, patterns=128)
    print(f"\nLogic BIST (128 on-chip patterns):")
    print(f"  stuck-at coverage: {bist.coverage * 100:.1f}% "
          f"({bist.detected}/{bist.total_faults})")
    print(f"  golden signature: 0x{bist.golden_signature:06x} "
          f"({bist.signature_width}-bit MISR, aliasing "
          f"{2.0 ** -bist.signature_width:.1e})")


if __name__ == "__main__":
    main()
