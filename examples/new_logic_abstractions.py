#!/usr/bin/env python3
"""De Micheli's forward look: new abstractions for new devices.

Three "deep rethinking of computational models" demonstrations:

* majority-inverter graphs vs AND-inverter graphs on adders (the
  function SiNW/CNT controlled-polarity devices compute natively);
* min-period retiming rebalancing a feedback pipeline;
* event-driven simulation exposing the glitch power that zero-delay
  models miss.

Run:  python examples/new_logic_abstractions.py
"""

from repro.netlist import Netlist, build_library
from repro.sim import EventSimulator, glitch_power_uw
from repro.synthesis.mig import aig_adder, mig_adder
from repro.synthesis.retiming import unbalanced_ring_example
from repro.tech import get_node


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Majority logic vs NAND-era logic (E16).
    # ------------------------------------------------------------------
    print("Majority-inverter vs AND-inverter abstraction:")
    for width in (8, 16, 32):
        mig = mig_adder(width)
        aig = aig_adder(width)
        print(f"  {width:>2}-bit adder: MIG {mig.num_majs:>4} nodes, "
              f"depth {mig.depth():>3}  |  AIG {aig.num_ands:>4} "
              f"nodes, depth {aig.depth():>3}  "
              f"({aig.depth() / mig.depth():.1f}x shallower)")
    print("  (the full-adder carry IS a majority — one gate on the "
          "emerging devices)")

    # ------------------------------------------------------------------
    # 2. Retiming: sequential optimization.
    # ------------------------------------------------------------------
    ring = unbalanced_ring_example(5, slow_delay=10.0, fast_delay=2.0)
    before = ring.clock_period()
    period, labels = ring.min_period()
    after = ring.apply(labels).clock_period()
    print(f"\nRetiming an unbalanced feedback pipeline:")
    print(f"  clock period {before:.0f} -> {after:.0f} "
          f"(register moves: {labels})")

    # ------------------------------------------------------------------
    # 3. Glitch power: what zero-delay analysis misses.
    # ------------------------------------------------------------------
    library = build_library(get_node("28nm"))
    nl = Netlist("skewed", library)
    a = nl.add_input("a")
    net = a
    for i in range(6):
        net = nl.add_gate("INV_X1_rvt", [net], f"d{i}").output
    nl.add_gate("XOR2_X1_rvt", [a, net], "y")
    nl.add_output("y")
    sim = EventSimulator(nl)
    trace = sim.simulate_transition({"a": False}, {"a": True})
    print(f"\nEvent-driven simulation of a skewed XOR cone:")
    print(f"  output transitions: {trace.transitions('y')} "
          f"(functional: 0 — all glitches)")
    print(f"  settle time: {trace.settle_time_ps:.0f} ps")
    print(f"  glitch power at 1 GHz: "
          f"{glitch_power_uw(nl, trace):.3f} uW — invisible to the "
          f"zero-delay power model")


if __name__ == "__main__":
    main()
